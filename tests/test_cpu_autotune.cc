// Property-based differential tests for the CPU autotuning stack:
//
//  * BlockConfig validation (Make / Validate / the FromTileShape clamp fix)
//  * candidate enumeration: every profiler-emitted candidate is valid
//  * ~200 randomized (shape, layout, epilogue, BlockConfig, thread-count)
//    tuples — including degenerate blocks (mc < kMR, nc not a multiple of
//    kNR, non-positive everything) — asserting the fast backend stays
//    bit-identical to the reference oracle under ANY blocking and either
//    parallelization scheme
//  * the tuned-block registry: backend gating (the reference oracle must
//    never see tuned state), interpreter integration
//  * Profiler::ProfileCpuGemm / ProfileCpuConv: real measurement, cache
//    hits with zero re-measurement, persistence round-trip
//  * Engine::Compile(tune_cpu_kernels): tuned selection end to end, and
//    the BOLT_CPU_BACKEND=ref regression (tuning must be a no-op).

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>

#include "bolt/engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "cpukernels/backend.h"
#include "cpukernels/config.h"
#include "cpukernels/conv.h"
#include "cpukernels/cpuinfo.h"
#include "cpukernels/gemm.h"
#include "cpukernels/tuned.h"
#include "ir/graph.h"
#include "ir/interpreter.h"
#include "profiler/cpu_tune.h"
#include "profiler/profiler.h"
#include "testing/diff_harness.h"

namespace bolt {
namespace {

using cpukernels::BlockConfig;
using cpukernels::CpuCacheInfo;
using cpukernels::ParallelScheme;
using cpukernels::TunedKind;
using cpukernels::kMR;
using cpukernels::kNR;
using difftest::RandomTensor;

// ---------------------------------------------------------------------------
// BlockConfig validation: Make rejects, FromTileShape clamps.
// ---------------------------------------------------------------------------

TEST(BlockConfigTest, MakeRejectsInvalidConfigs) {
  EXPECT_FALSE(BlockConfig::Make(0, 256, 4096).ok());     // mc == 0
  EXPECT_FALSE(BlockConfig::Make(-4, 256, 4096).ok());    // mc < 0
  EXPECT_FALSE(BlockConfig::Make(3, 256, 4096).ok());     // mc < kMR
  EXPECT_FALSE(BlockConfig::Make(6, 256, 4096).ok());     // mc % kMR != 0
  EXPECT_FALSE(BlockConfig::Make(64, 256, 0).ok());       // nc == 0
  EXPECT_FALSE(BlockConfig::Make(64, 256, 12).ok());      // nc % kNR != 0
  EXPECT_FALSE(BlockConfig::Make(64, 256, -8).ok());      // nc < 0
  EXPECT_FALSE(BlockConfig::Make(64, 7, 4096).ok());      // kc < 8
  EXPECT_FALSE(BlockConfig::Make(64, 0, 4096).ok());      // kc == 0
  EXPECT_FALSE(
      BlockConfig::Make(64, 256, 4096, static_cast<ParallelScheme>(7)).ok());

  auto ok = BlockConfig::Make(kMR, 8, kNR, ParallelScheme::kBatchLevel);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().Validate().ok());
  EXPECT_EQ(ok.value().scheme, ParallelScheme::kBatchLevel);
}

TEST(BlockConfigTest, FromTileShapeClampsNonPositiveDims) {
  // Regression: FromTileShape used to silently accept non-positive tile
  // dims and hand the kernels a zero/negative blocking.  Every result must
  // now pass Validate(), whatever the inputs.
  const int dims[] = {-65, -1, 0, 1, 2, 3, 4, 7, 8, 17, 63, 64, 129, 4096};
  for (int tm : dims) {
    for (int tn : dims) {
      for (int tk : {-3, 0, 1, 8, 17, 512}) {
        const BlockConfig c = BlockConfig::FromTileShape(tm, tn, tk);
        EXPECT_TRUE(c.Validate().ok())
            << "FromTileShape(" << tm << "," << tn << "," << tk << ") -> mc="
            << c.mc << " kc=" << c.kc << " nc=" << c.nc;
      }
    }
  }
  // Spot-check the rounding: down to the micro-tile, never below it.
  EXPECT_EQ(BlockConfig::FromTileShape(0, 0, 0).mc, kMR);
  EXPECT_EQ(BlockConfig::FromTileShape(0, 0, 0).nc, kNR);
  EXPECT_EQ(BlockConfig::FromTileShape(0, 0, 0).kc, 8);
  EXPECT_EQ(BlockConfig::FromTileShape(129, 130, 17).mc, 128);
  EXPECT_EQ(BlockConfig::FromTileShape(129, 130, 17).nc, 128);
  EXPECT_EQ(BlockConfig::FromTileShape(129, 130, 17).kc, 17);
}

// ---------------------------------------------------------------------------
// Candidate enumeration: every emitted candidate is architecture-plausible
// AND valid; the heuristic leads; enumeration is deterministic and deduped.
// ---------------------------------------------------------------------------

TEST(CandidateEnumerationTest, EveryCandidateValidatesAcrossMachines) {
  // Real host plus synthetic cache hierarchies, including degenerate tiny
  // ones that force every cap to clamp.
  std::vector<CpuCacheInfo> machines = {cpukernels::HostCacheInfo()};
  CpuCacheInfo tiny;
  tiny.l1_bytes = 1024;
  tiny.l2_bytes = 2048;
  tiny.l3_bytes = 4096;
  machines.push_back(tiny);
  CpuCacheInfo huge;
  huge.l1_bytes = 512 * 1024;
  huge.l2_bytes = 16 * 1024 * 1024;
  huge.l3_bytes = 256 * 1024 * 1024;
  machines.push_back(huge);

  Rng rng(42);
  for (const CpuCacheInfo& cache : machines) {
    for (int trial = 0; trial < 24; ++trial) {
      const int64_t m = rng.Uniform(1, 600);
      const int64_t n = rng.Uniform(1, 600);
      const int64_t k = rng.Uniform(1, 1200);
      for (int threads : {1, 4}) {
        const auto cands = EnumerateCpuBlockCandidates(cache, m, n, k,
                                                       threads);
        ASSERT_FALSE(cands.empty());
        // The fixed heuristic is always candidate #0, so measured
        // selection can never lose to it beyond noise.
        EXPECT_TRUE(cands[0] == BlockConfig{});
        std::set<std::tuple<int, int, int, int, int, bool>> seen;
        for (const BlockConfig& c : cands) {
          EXPECT_TRUE(c.Validate().ok())
              << "m=" << m << " n=" << n << " k=" << k << " mc=" << c.mc
              << " kc=" << c.kc << " nc=" << c.nc;
          EXPECT_TRUE(seen.emplace(c.mc, c.kc, c.nc,
                                   static_cast<int>(c.scheme),
                                   static_cast<int>(c.isa), c.prefetch)
                          .second)
              << "duplicate candidate";
        }
        // Deterministic: a second enumeration is element-wise identical.
        const auto again = EnumerateCpuBlockCandidates(cache, m, n, k,
                                                       threads);
        ASSERT_EQ(again.size(), cands.size());
        for (size_t i = 0; i < cands.size(); ++i) {
          EXPECT_TRUE(again[i] == cands[i]);
        }
      }
    }
  }
}

TEST(CandidateEnumerationTest, MultiThreadEmitsBothSchemes) {
  const CpuCacheInfo cache = cpukernels::HostCacheInfo();
  const auto serial = EnumerateCpuBlockCandidates(cache, 256, 256, 256, 1);
  for (const BlockConfig& c : serial) {
    EXPECT_EQ(c.scheme, ParallelScheme::kLoopLevel);
  }
  const auto parallel = EnumerateCpuBlockCandidates(cache, 256, 256, 256, 4);
  bool saw_batch = false;
  for (const BlockConfig& c : parallel) {
    saw_batch |= c.scheme == ParallelScheme::kBatchLevel;
  }
  EXPECT_TRUE(saw_batch);
  EXPECT_GT(parallel.size(), serial.size());
}

TEST(CandidateEnumerationTest, IsaBecomesAMeasuredAxisUnderAvx2) {
  const CpuCacheInfo cache = cpukernels::HostCacheInfo();
  // Scalar mode: every blocking rides with isa=kAuto, with both settings
  // of the prefetch axis (the only tunable besides the blocking itself).
  const auto scalar = EnumerateCpuBlockCandidates(
      cache, 256, 256, 256, 4, cpukernels::CpuIsa::kScalar);
  ASSERT_FALSE(scalar.empty());
  ASSERT_EQ(scalar.size() % 2, 0u);  // prefetch doubles every blocking
  EXPECT_TRUE(scalar[0] == BlockConfig{});
  size_t scalar_prefetch = 0;
  for (const BlockConfig& c : scalar) {
    EXPECT_EQ(c.isa, cpukernels::CpuIsa::kAuto);
    scalar_prefetch += c.prefetch ? 1 : 0;
  }
  EXPECT_EQ(scalar_prefetch, scalar.size() / 2);
  // AVX2 mode (testable only when the host resolves it; BOLT_CPU_ISA=
  // scalar also vetoes): the ISA turns into a measured axis — every
  // blocking additionally appears as an explicit kScalar variant
  // (prefetch off: the axis only rides the tier a default launch runs),
  // and the kAuto subsequence is exactly the scalar-mode set.
  if (cpukernels::ResolveCpuIsa(cpukernels::CpuIsa::kAvx2) !=
      cpukernels::CpuIsa::kAvx2) {
    GTEST_SKIP() << "host or env pins the scalar tier";
  }
  const auto avx2 = EnumerateCpuBlockCandidates(
      cache, 256, 256, 256, 4, cpukernels::CpuIsa::kAvx2);
  ASSERT_EQ(avx2.size(), scalar.size() + scalar.size() / 2);
  EXPECT_TRUE(avx2[0] == BlockConfig{});
  std::vector<BlockConfig> autos, scalars;
  for (const BlockConfig& c : avx2) {
    (c.isa == cpukernels::CpuIsa::kAuto ? autos : scalars).push_back(c);
    EXPECT_TRUE(c.isa == cpukernels::CpuIsa::kAuto ||
                c.isa == cpukernels::CpuIsa::kScalar);
    EXPECT_TRUE(c.Validate().ok());
  }
  ASSERT_EQ(autos.size(), scalar.size());
  ASSERT_EQ(scalars.size(), scalar.size() / 2);
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_TRUE(autos[i] == scalar[i]);
  }
  for (const BlockConfig& c : scalars) {
    EXPECT_FALSE(c.prefetch);
  }
}

TEST(CandidateEnumerationTest, Avx512AddsAnExplicitAvx2Rung) {
  // When the ladder tops out at AVX-512, every blocking gains an explicit
  // kAvx2 variant on top of the kAuto/kScalar pair — wider vectors are
  // not always faster (512-bit port pressure, license downclocking), so
  // the narrower SIMD tier stays measurable.
  if (cpukernels::ResolveCpuIsa(cpukernels::CpuIsa::kAvx512) !=
      cpukernels::CpuIsa::kAvx512) {
    GTEST_SKIP() << "host or env caps the ladder below AVX-512";
  }
  const CpuCacheInfo cache = cpukernels::HostCacheInfo();
  const auto base = EnumerateCpuBlockCandidates(
      cache, 256, 256, 256, 4, cpukernels::CpuIsa::kScalar);
  const auto wide = EnumerateCpuBlockCandidates(
      cache, 256, 256, 256, 4, cpukernels::CpuIsa::kAvx512);
  ASSERT_EQ(wide.size(), 2 * base.size());
  EXPECT_TRUE(wide[0] == BlockConfig{});
  std::vector<BlockConfig> autos;
  size_t n_scalar = 0, n_avx2 = 0;
  for (const BlockConfig& c : wide) {
    EXPECT_TRUE(c.Validate().ok());
    if (c.isa == cpukernels::CpuIsa::kAuto) {
      autos.push_back(c);
    } else {
      EXPECT_FALSE(c.prefetch);  // prefetch sweeps on kAuto only
      n_scalar += c.isa == cpukernels::CpuIsa::kScalar ? 1 : 0;
      n_avx2 += c.isa == cpukernels::CpuIsa::kAvx2 ? 1 : 0;
    }
  }
  ASSERT_EQ(autos.size(), base.size());
  EXPECT_EQ(n_scalar, base.size() / 2);
  EXPECT_EQ(n_avx2, base.size() / 2);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_TRUE(autos[i] == base[i]);
  }
}

// ---------------------------------------------------------------------------
// Randomized differential harness: ~200 (shape, layout, epilogue,
// BlockConfig, thread-count) tuples against the naive reference loops.
// Degenerate blocks ride through GemmCore's clamping; results must stay
// bit-identical regardless.
// ---------------------------------------------------------------------------

using difftest::RandomBlock;
const std::vector<ActivationKind>& kActs = difftest::kActivations;

TEST(DifferentialAutotuneTest, RandomizedGemmTuples) {
  Rng rng(2026);
  ThreadPool pool2(2), pool5(5);
  ThreadPool* pools[] = {nullptr, &pool2, &pool5};
  for (int trial = 0; trial < 120; ++trial) {
    const int64_t m = rng.Uniform(1, 40);
    const int64_t n = rng.Uniform(1, 33);
    const int64_t k = rng.Uniform(1, 80);
    const DType dt = trial % 3 == 0 ? DType::kFloat32 : DType::kFloat16;
    const BlockConfig block = RandomBlock(rng);
    ThreadPool* pool = pools[rng.Uniform(0, 2)];
    const bool has_bias = rng.Uniform(0, 1) == 1;
    const bool has_residual = rng.Uniform(0, 1) == 1;
    const ActivationKind act = kActs[rng.Uniform(0, 3)];
    SCOPED_TRACE(StrCat("trial=", trial, " m=", m, " n=", n, " k=", k,
                        " mc=", block.mc, " kc=", block.kc, " nc=", block.nc,
                        " scheme=", ParallelSchemeName(block.scheme),
                        " bias=", has_bias, " res=", has_residual));

    Tensor a = RandomTensor(TensorDesc(dt, {m, k}), 3000 + trial);
    Tensor w = RandomTensor(TensorDesc(dt, {n, k}), 4000 + trial);
    Tensor bias = RandomTensor(TensorDesc(dt, {n}), 5000 + trial);
    Tensor res = RandomTensor(TensorDesc(dt, {m, n}), 6000 + trial);

    cpukernels::Epilogue epi;
    epi.output_dtype = dt;
    epi.boundary_quantize = true;
    if (has_bias) epi.bias = bias.data().data();
    if (has_residual) epi.residual = res.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Gemm(a, w, epi, block, pool);

    Tensor want = refop::Dense(a, w);
    if (has_bias) want = refop::BiasAdd(want, bias);
    want = refop::Activation(want, act);
    if (has_residual) want = refop::Add(want, res);
    EXPECT_TRUE(difftest::CheckDiff(
        "gemm", got, want,
        difftest::ToleranceFor(cpukernels::ResolveCpuIsa(block.isa), dt)));
  }
}

TEST(DifferentialAutotuneTest, RandomizedConvTuples) {
  Rng rng(777);
  ThreadPool pool3(3);
  for (int trial = 0; trial < 80; ++trial) {
    const Layout layout = trial % 2 == 0 ? Layout::kNHWC : Layout::kNCHW;
    const int64_t h = rng.Uniform(4, 10);
    const int64_t c = rng.Uniform(1, 8);
    const int64_t oc = rng.Uniform(1, 10);
    const int64_t kernel = 1 + 2 * rng.Uniform(0, 1);
    const int64_t stride = rng.Uniform(1, 2);
    const int64_t pad = rng.Uniform(0, kernel - 1);
    const int64_t dilation = kernel == 3 ? rng.Uniform(1, 2) : 1;
    const BlockConfig block = RandomBlock(rng);
    ThreadPool* pool = rng.Uniform(0, 1) == 1 ? &pool3 : nullptr;
    const bool has_bias = rng.Uniform(0, 1) == 1;
    const ActivationKind act = kActs[rng.Uniform(0, 3)];
    SCOPED_TRACE(StrCat("trial=", trial, " h=", h, " c=", c, " oc=", oc,
                        " f=", kernel, " s=", stride, " p=", pad,
                        " d=", dilation, " ", LayoutName(layout),
                        " mc=", block.mc, " kc=", block.kc, " nc=", block.nc,
                        " scheme=", ParallelSchemeName(block.scheme)));

    std::vector<int64_t> xs = layout == Layout::kNHWC
                                  ? std::vector<int64_t>{1, h, h, c}
                                  : std::vector<int64_t>{1, c, h, h};
    Tensor x = RandomTensor(TensorDesc(DType::kFloat16, xs, layout),
                            7000 + trial);
    Tensor w = RandomTensor(
        TensorDesc(DType::kFloat16, {oc, kernel, kernel, c}), 8000 + trial);
    Tensor bias = RandomTensor(TensorDesc(DType::kFloat16, {oc}),
                               9000 + trial);

    Conv2dAttrs attrs;
    attrs.stride_h = attrs.stride_w = stride;
    attrs.pad_h = attrs.pad_w = pad;
    attrs.dilation_h = attrs.dilation_w = dilation;
    cpukernels::ConvParams p;
    p.stride_h = p.stride_w = stride;
    p.pad_h = p.pad_w = pad;
    p.dilation_h = p.dilation_w = dilation;

    cpukernels::Epilogue epi;
    epi.output_dtype = DType::kFloat16;
    epi.boundary_quantize = true;
    if (has_bias) epi.bias = bias.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Conv2d(x, w, p, epi, block, pool);

    Tensor want = refop::Conv2d(x, w, attrs);
    if (has_bias) want = refop::BiasAdd(want, bias);
    want = refop::Activation(want, act);
    EXPECT_TRUE(difftest::CheckDiff(
        "conv", got, want,
        difftest::ToleranceFor(cpukernels::ResolveCpuIsa(block.isa),
                               DType::kFloat16)));
  }
}

TEST(DifferentialAutotuneTest, SchemesAreBitIdentical) {
  // Loop-level and batch-level parallelization split the same serial nest
  // differently; per-element accumulation order is unchanged, so outputs
  // must agree to the bit (signed zeros included).
  ThreadPool pool(4);
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t m = rng.Uniform(1, 300);
    const int64_t n = rng.Uniform(1, 80);
    const int64_t k = rng.Uniform(1, 120);
    Tensor a = RandomTensor(TensorDesc(DType::kFloat16, {m, k}), 50 + trial);
    Tensor w = RandomTensor(TensorDesc(DType::kFloat16, {n, k}), 60 + trial);
    cpukernels::Epilogue epi;
    epi.output_dtype = DType::kFloat16;
    epi.boundary_quantize = true;
    BlockConfig loop;
    loop.mc = 32;
    loop.kc = 64;
    loop.nc = 48;
    loop.scheme = ParallelScheme::kLoopLevel;
    BlockConfig batch = loop;
    batch.scheme = ParallelScheme::kBatchLevel;
    Tensor serial = cpukernels::Gemm(a, w, epi, loop);
    Tensor lv = cpukernels::Gemm(a, w, epi, loop, &pool);
    Tensor bv = cpukernels::Gemm(a, w, epi, batch, &pool);
    ASSERT_EQ(serial.data().size(), bv.data().size());
    EXPECT_EQ(std::memcmp(serial.data().data(), lv.data().data(),
                          serial.data().size() * sizeof(float)),
              0)
        << "loop-level, m=" << m << " n=" << n << " k=" << k;
    EXPECT_EQ(std::memcmp(serial.data().data(), bv.data().data(),
                          serial.data().size() * sizeof(float)),
              0)
        << "batch-level, m=" << m << " n=" << n << " k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Tuned-block registry: backend gating and interpreter integration.
// ---------------------------------------------------------------------------

TEST(TunedRegistryTest, RegisterFindClearRoundTrip) {
  cpukernels::ClearTunedBlocks();
  BlockConfig c = BlockConfig::Make(32, 64, 48).value();
  EXPECT_TRUE(cpukernels::RegisterTunedBlock(TunedKind::kGemm, 7, 9, 11, c));
  EXPECT_EQ(cpukernels::TunedBlockCount(), 1);
  auto hit = cpukernels::FindTunedBlockForBackend(
      TunedKind::kGemm, 7, 9, 11, cpukernels::Backend::kFastCpu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit == c);
  // Same dims, other kind: distinct key.
  EXPECT_FALSE(cpukernels::FindTunedBlockForBackend(
                   TunedKind::kConv, 7, 9, 11,
                   cpukernels::Backend::kFastCpu)
                   .has_value());
  cpukernels::ClearTunedBlocks();
  EXPECT_EQ(cpukernels::TunedBlockCount(), 0);
}

TEST(TunedRegistryTest, InvalidBlocksAreRejected) {
  cpukernels::ClearTunedBlocks();
  BlockConfig bad;
  bad.mc = 3;  // < kMR
  EXPECT_FALSE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 1, 2, 3, bad));
  bad = BlockConfig{};
  bad.nc = 12;  // not a multiple of kNR
  EXPECT_FALSE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 1, 2, 3, bad));
  EXPECT_EQ(cpukernels::TunedBlockCount(), 0);
}

TEST(TunedRegistryTest, ReferenceBackendNeverSeesTunedBlocks) {
  // The regression the BOLT_CPU_BACKEND=ref env matrix guards: selecting
  // the reference backend must also disable tuned-block selection, so the
  // oracle's numerics can never depend on tuning state.
  cpukernels::ClearTunedBlocks();
  BlockConfig c = BlockConfig::Make(8, 16, 8).value();
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 5, 6, 7, c));
  EXPECT_TRUE(cpukernels::FindTunedBlockForBackend(
                  TunedKind::kGemm, 5, 6, 7, cpukernels::Backend::kFastCpu)
                  .has_value());
  EXPECT_FALSE(cpukernels::FindTunedBlockForBackend(
                   TunedKind::kGemm, 5, 6, 7,
                   cpukernels::Backend::kReference)
                   .has_value());
  // Belt and braces: the oracle's interpreter options opt out wholesale.
  EXPECT_FALSE(RefExecutor::ReferenceOptions().use_tuned_blocks);
  // FindTunedBlock (the execution-path entry) honors the process-wide
  // backend selection.
  const bool expect_hit =
      cpukernels::DefaultBackend() == cpukernels::Backend::kFastCpu;
  EXPECT_EQ(
      cpukernels::FindTunedBlock(TunedKind::kGemm, 5, 6, 7).has_value(),
      expect_hit);
  cpukernels::ClearTunedBlocks();
}

TEST(TunedRegistryTest, InterpreterHonorsTunedBlocksBitExactly) {
  // Register deliberately extreme blockings for the exact problems a graph
  // executes; the fast interpreter must pick them up (use_tuned_blocks
  // default) and still match the oracle bit-for-bit.
  cpukernels::ClearTunedBlocks();
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 9, 9, 6});
  NodeId w = b.Constant(
      "w", RandomTensor(TensorDesc(DType::kFloat16, {10, 3, 3, 6}), 70));
  NodeId conv = b.Conv2d(x, w, Conv2dAttrs{});
  NodeId flat = b.Flatten(b.GlobalAvgPool(conv));
  NodeId wd = b.Constant(
      "wd", RandomTensor(TensorDesc(DType::kFloat16, {4, 10}), 71));
  NodeId y = b.Dense(flat, wd);
  b.MarkOutput(y);
  Graph g = b.Build().value();
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 9, 9, 6}, Layout::kNHWC), 72);

  // Conv2dAttrs{} defaults: 3x3 stride-1 pad-0 -> oh = ow = 7.
  const int64_t conv_m = 1 * 7 * 7, conv_n = 10, conv_k = 3 * 3 * 6;
  BlockConfig tiny = BlockConfig::Make(kMR, 8, kNR).value();
  ASSERT_TRUE(cpukernels::RegisterTunedBlock(TunedKind::kConv, conv_m,
                                             conv_n, conv_k, tiny));
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 1, 4, 10, tiny));

  RefExecutor oracle(g);
  auto want = oracle.Run(in);
  ASSERT_TRUE(want.ok());
  InterpreterOptions o;
  o.backend = cpukernels::Backend::kFastCpu;
  auto got = Interpreter(g, o).Run(in);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value()[0].MaxAbsDiff(want.value()[0]), 0.0f);

  // Opting out must also match (tuning can never change numerics).
  o.use_tuned_blocks = false;
  auto untuned = Interpreter(g, o).Run(in);
  ASSERT_TRUE(untuned.ok());
  EXPECT_EQ(std::memcmp(got.value()[0].data().data(),
                        untuned.value()[0].data().data(),
                        got.value()[0].data().size() * sizeof(float)),
            0);
  cpukernels::ClearTunedBlocks();
}

// ---------------------------------------------------------------------------
// Profiler CPU measurement path: real sweeps, single measurement per
// workload, persistence round-trip re-activating the registry.
// ---------------------------------------------------------------------------

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

TEST(ProfileCpuTest, GemmSweepSelectsValidatedBlockAndRegisters) {
  cpukernels::ClearTunedBlocks();
  Profiler prof(kT4);
  CpuGemmWorkload w;
  w.m = 24;
  w.n = 16;
  w.k = 32;
  auto r = prof.ProfileCpuGemm(w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().cache_hit);
  EXPECT_TRUE(r.value().block.Validate().ok());
  EXPECT_GT(r.value().us, 0.0);
  const auto cands = EnumerateCpuBlockCandidates(
      cpukernels::HostCacheInfo(), w.m, w.n, w.k,
      cpukernels::DefaultNumThreads());
  EXPECT_EQ(r.value().candidates_tried, static_cast<int>(cands.size()));
  EXPECT_EQ(prof.cpu_cache_size(), 1);
  // Real measurement is charged to the tuning clock.
  EXPECT_GT(prof.clock().measure_seconds(), 0.0);
  // The winner is live in the execution registry.
  auto hit = cpukernels::FindTunedBlockForBackend(
      TunedKind::kGemm, w.m, w.n, w.k, cpukernels::Backend::kFastCpu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit == r.value().block);
  cpukernels::ClearTunedBlocks();
}

TEST(ProfileCpuTest, SecondProfileIsAZeroMeasurementCacheHit) {
  cpukernels::ClearTunedBlocks();
  Profiler prof(kT4);
  CpuGemmWorkload w;
  w.m = 20;
  w.n = 24;
  w.k = 40;
  auto first = prof.ProfileCpuGemm(w);
  ASSERT_TRUE(first.ok());
  const double clock_after_first = prof.clock().seconds();
  // A cache hit must re-assert the registry entry (second compiles restore
  // execution-time selection) while charging zero additional measurement.
  cpukernels::ClearTunedBlocks();
  auto second = prof.ProfileCpuGemm(w);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_TRUE(second.value().block == first.value().block);
  EXPECT_DOUBLE_EQ(second.value().us, first.value().us);
  EXPECT_DOUBLE_EQ(prof.clock().seconds(), clock_after_first);
  EXPECT_TRUE(cpukernels::FindTunedBlockForBackend(
                  TunedKind::kGemm, w.m, w.n, w.k,
                  cpukernels::Backend::kFastCpu)
                  .has_value());
  cpukernels::ClearTunedBlocks();
}

TEST(ProfileCpuTest, ConvSweepUsesImplicitGemmDims) {
  cpukernels::ClearTunedBlocks();
  Profiler prof(kT4);
  CpuConvWorkload w;
  w.batch = 1;
  w.h = 8;
  w.w = 8;
  w.c = 4;
  w.oc = 8;
  w.kh = 3;
  w.kw = 3;
  w.params.pad_h = w.params.pad_w = 1;
  const cpukernels::ConvGemmShape shape = w.GemmShape();
  EXPECT_EQ(shape.m, 1 * 8 * 8);
  EXPECT_EQ(shape.n, 8);
  EXPECT_EQ(shape.k, 3 * 3 * 4);
  auto r = prof.ProfileCpuConv(w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().block.Validate().ok());
  // Conv sweeps register under the workload's activation layout, not the
  // gemm default — the rowmajor slot must stay empty.
  EXPECT_TRUE(cpukernels::FindTunedBlockForBackend(
                  TunedKind::kConv, shape.m, shape.n, shape.k,
                  cpukernels::Backend::kFastCpu, w.layout)
                  .has_value());
  EXPECT_FALSE(cpukernels::FindTunedBlockForBackend(
                   TunedKind::kConv, shape.m, shape.n, shape.k,
                   cpukernels::Backend::kFastCpu)
                   .has_value());
  // A second conv with identical implicit-GEMM dims but different geometry
  // is a distinct workload (the cache key embeds the geometry).
  CpuConvWorkload w2 = w;
  w2.params.dilation_h = 1;  // identical -> hit
  auto again = prof.ProfileCpuConv(w2);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().cache_hit);
  cpukernels::ClearTunedBlocks();
}

TEST(ProfileCpuTest, RejectsDegenerateWorkloads) {
  Profiler prof(kT4);
  CpuGemmWorkload g;
  g.m = 0;
  g.n = 8;
  g.k = 8;
  EXPECT_FALSE(prof.ProfileCpuGemm(g).ok());
  CpuConvWorkload c;  // all-zero dims
  EXPECT_FALSE(prof.ProfileCpuConv(c).ok());
}

TEST(ProfileCpuTest, SaveLoadRoundTripReactivatesRegistry) {
  cpukernels::ClearTunedBlocks();
  Profiler session1(kT4);
  CpuGemmWorkload w;
  w.m = 12;
  w.n = 8;
  w.k = 16;
  auto r = session1.ProfileCpuGemm(w);
  ASSERT_TRUE(r.ok());
  std::ostringstream saved;
  ASSERT_TRUE(session1.SaveCache(saved).ok());

  cpukernels::ClearTunedBlocks();
  Profiler session2(kT4);
  std::istringstream in(saved.str());
  ASSERT_TRUE(session2.LoadCache(in).ok());
  EXPECT_EQ(session2.cpu_cache_size(), 1);
  // Loading alone re-activates execution-time selection...
  auto hit = cpukernels::FindTunedBlockForBackend(
      TunedKind::kGemm, w.m, w.n, w.k, cpukernels::Backend::kFastCpu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit == r.value().block);
  // ...and a re-profile is a pure cache hit with zero measurement time.
  const double clock_before = session2.clock().seconds();
  auto warm = session2.ProfileCpuGemm(w);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_DOUBLE_EQ(session2.clock().seconds(), clock_before);
  cpukernels::ClearTunedBlocks();
}

// ---------------------------------------------------------------------------
// Engine integration: CompileOptions::tune_cpu_kernels end to end.
// ---------------------------------------------------------------------------

Graph SmallMlp() {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {6, 20});
  NodeId w1 = b.Constant(
      "w1", RandomTensor(TensorDesc(DType::kFloat16, {16, 20}), 80));
  NodeId b1 =
      b.Constant("b1", RandomTensor(TensorDesc(DType::kFloat16, {16}), 81));
  NodeId w2 = b.Constant(
      "w2", RandomTensor(TensorDesc(DType::kFloat16, {8, 16}), 82));
  NodeId h = b.Activation(b.BiasAdd(b.Dense(x, w1), b1),
                          ActivationKind::kRelu);
  b.MarkOutput(b.Dense(h, w2));
  return b.Build().value();
}

TEST(EngineCpuTuneTest, TunedCompileMatchesUntunedBitExactly) {
  cpukernels::ClearTunedBlocks();
  const Graph g = SmallMlp();
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(TensorDesc(DType::kFloat16, {6, 20}), 83);

  CompileOptions plain;
  auto untuned = Engine::Compile(g, plain);
  ASSERT_TRUE(untuned.ok());
  auto base = untuned->Run(in);
  ASSERT_TRUE(base.ok());

  Profiler shared(kT4);
  CompileOptions opts;
  opts.tune_cpu_kernels = true;
  opts.shared_profiler = &shared;
  auto tuned = Engine::Compile(g, opts);
  ASSERT_TRUE(tuned.ok());
  const TuningReport& report = tuned->tuning_report();

  if (cpukernels::DefaultBackend() == cpukernels::Backend::kReference) {
    // BOLT_CPU_BACKEND=ref regression: tuning must be a complete no-op.
    EXPECT_EQ(report.cpu_workloads_tuned, 0);
    EXPECT_EQ(report.cpu_candidates_tried, 0);
    EXPECT_EQ(cpukernels::TunedBlockCount(), 0);
  } else {
    EXPECT_GT(report.cpu_workloads_tuned, 0);
    EXPECT_GT(report.cpu_candidates_tried, 0);
    EXPECT_GT(cpukernels::TunedBlockCount(), 0);
  }

  // Tuned execution is bit-identical to the fixed heuristic.
  auto got = tuned->Run(in);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), base.value().size());
  for (size_t i = 0; i < base.value().size(); ++i) {
    ASSERT_EQ(got.value()[i].data().size(), base.value()[i].data().size());
    EXPECT_EQ(std::memcmp(got.value()[i].data().data(),
                          base.value()[i].data().data(),
                          base.value()[i].data().size() * sizeof(float)),
              0)
        << "output " << i;
  }
  cpukernels::ClearTunedBlocks();
}

TEST(EngineCpuTuneTest, SecondCompileHitsCpuCacheWithZeroMeasurement) {
  if (cpukernels::DefaultBackend() != cpukernels::Backend::kFastCpu) {
    GTEST_SKIP() << "CPU tuning is disabled under the reference backend";
  }
  cpukernels::ClearTunedBlocks();
  const Graph g = SmallMlp();
  Profiler shared(kT4);
  CompileOptions opts;
  opts.tune_cpu_kernels = true;
  opts.shared_profiler = &shared;

  auto first = Engine::Compile(g, opts);
  ASSERT_TRUE(first.ok());
  const TuningReport& r1 = first->tuning_report();
  EXPECT_GT(r1.cpu_workloads_tuned, 0);
  EXPECT_EQ(r1.cpu_cache_hits, 0);
  EXPECT_GT(r1.cpu_candidates_tried, 0);

  // Second compile against the shared profiler: every workload is a cache
  // hit and zero candidates are re-measured (the acceptance bar).
  cpukernels::ClearTunedBlocks();
  auto second = Engine::Compile(g, opts);
  ASSERT_TRUE(second.ok());
  const TuningReport& r2 = second->tuning_report();
  EXPECT_EQ(r2.cpu_workloads_tuned, r1.cpu_workloads_tuned);
  EXPECT_EQ(r2.cpu_cache_hits, r2.cpu_workloads_tuned);
  EXPECT_EQ(r2.cpu_candidates_tried, 0);
  // The cache hit alone restored execution-time selection.
  EXPECT_GT(cpukernels::TunedBlockCount(), 0);
  cpukernels::ClearTunedBlocks();
}

}  // namespace
}  // namespace bolt
