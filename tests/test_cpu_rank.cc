// Tests for the learned CPU candidate ranking stack:
//
//  * BoostedStumps width contract: Predict on a feature vector whose width
//    differs from the training set returns the training mean instead of
//    reading out of bounds.
//  * FeaturizeCpuBlock: deterministic, fixed-width features.
//  * CpuRankModel confidence gates: untrained, too-few-rows, flat-spread,
//    and width-mismatch candidate sets all decline to rank (nullopt), and
//    a trained model ranks a separable candidate set correctly.
//  * Tuned-registry lookups: FindTunedBlockNearBatch counter exactness
//    (one request feeds exactly one of hit/near/miss — the double-count
//    regression), smallest-above-else-largest-below preference, and the
//    nearest-shape transfer query FindTunedBlockNearShape.
//  * Profiler ranked sweeps end to end: unconfident sweeps fall back to
//    the full candidate set, confident ones measure a strict subset while
//    still selecting a valid block, transfer seeds join the sweep, and
//    disabling cpu_ranked_sweep restores the exhaustive baseline.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ansor/cost_model.h"
#include "common/metrics.h"
#include "cpukernels/backend.h"
#include "cpukernels/cpuinfo.h"
#include "cpukernels/tuned.h"
#include "profiler/cpu_rank.h"
#include "profiler/cpu_tune.h"
#include "profiler/profiler.h"

namespace bolt {
namespace {

using cpukernels::BlockConfig;
using cpukernels::TunedKind;
using cpukernels::kMR;
using cpukernels::kNR;

// ---------------------------------------------------------------------------
// BoostedStumps width contract.
// ---------------------------------------------------------------------------

TEST(BoostedStumpsWidthTest, MismatchedWidthReturnsTrainingMean) {
  ansor::BoostedStumps model(20);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 16; ++i) {
    xs.push_back({static_cast<double>(i), static_cast<double>(i % 3)});
    ys.push_back(static_cast<double>(i));
  }
  model.Fit(xs, ys);
  ASSERT_TRUE(model.trained());
  EXPECT_EQ(model.trained_dim(), 2);
  const double mean = 7.5;  // mean of 0..15
  // Too narrow, too wide, empty: all return the base prediction instead
  // of indexing past the feature vector.
  EXPECT_DOUBLE_EQ(model.Predict({1.0}), mean);
  EXPECT_DOUBLE_EQ(model.Predict({1.0, 2.0, 3.0}), mean);
  EXPECT_DOUBLE_EQ(model.Predict({}), mean);
  // The matching width actually uses the stumps.
  EXPECT_GT(model.Predict({15.0, 0.0}), model.Predict({0.0, 0.0}));
}

// ---------------------------------------------------------------------------
// Featurization.
// ---------------------------------------------------------------------------

TEST(FeaturizeCpuBlockTest, DeterministicFixedWidth) {
  const cpukernels::CpuCacheInfo cache = cpukernels::HostCacheInfo();
  const BlockConfig heuristic;
  const auto a = FeaturizeCpuBlock(cache, TunedKind::kGemm, 128, 64, 256, 4,
                                   heuristic);
  const auto b = FeaturizeCpuBlock(cache, TunedKind::kGemm, 128, 64, 256, 4,
                                   heuristic);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
  for (double v : a) EXPECT_TRUE(std::isfinite(v));
  // Conv and gemm rows share the width (the kind is a feature), so one
  // model can train across both families.
  const auto c = FeaturizeCpuBlock(cache, TunedKind::kConv, 128, 64, 256, 4,
                                   heuristic);
  EXPECT_EQ(c.size(), a.size());
  EXPECT_NE(c, a);  // the kind feature differs
  // The blocking is a feature: a different candidate gets a distinct row.
  BlockConfig other = heuristic;
  other.kc *= 2;
  EXPECT_NE(FeaturizeCpuBlock(cache, TunedKind::kGemm, 128, 64, 256, 4,
                              other),
            a);
}

// ---------------------------------------------------------------------------
// CpuRankModel confidence gates and ranking.
// ---------------------------------------------------------------------------

std::vector<double> Row(double x) { return {x, 1.0}; }

TEST(CpuRankModelTest, UntrainedAndUnderfedModelsDecline) {
  CpuRankModel::Options opts;
  opts.min_rows = 8;
  CpuRankModel model(opts);
  const std::vector<std::vector<double>> cands = {Row(0), Row(1), Row(2)};
  EXPECT_FALSE(model.SelectTopK(cands, 2).has_value());  // untrained
  for (int i = 0; i < 4; ++i) {
    model.AddMeasurement(Row(i), std::exp(i));
  }
  model.Fit();
  EXPECT_TRUE(model.trained());
  EXPECT_FALSE(model.SelectTopK(cands, 2).has_value());  // rows < min_rows
}

TEST(CpuRankModelTest, RanksASeparableCandidateSet) {
  CpuRankModel::Options opts;
  opts.min_rows = 8;
  CpuRankModel model(opts);
  // Latency grows with feature 0 (us = e^x), so the score -log(us) = -x
  // ranks small x first.
  for (int i = 0; i < 32; ++i) {
    model.AddMeasurement(Row(i % 8), std::exp(i % 8));
  }
  model.Fit();
  const std::vector<std::vector<double>> cands = {Row(6), Row(1), Row(4),
                                                  Row(0), Row(7)};
  auto top = model.SelectTopK(cands, 2);
  ASSERT_TRUE(top.has_value());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0], 3u);  // x=0: fastest
  EXPECT_EQ((*top)[1], 1u);  // x=1: second
}

TEST(CpuRankModelTest, FlatSpreadAndWidthMismatchDecline) {
  CpuRankModel::Options opts;
  opts.min_rows = 8;
  CpuRankModel model(opts);
  // Constant latency: predictions are flat, so the spread gate trips.
  for (int i = 0; i < 16; ++i) {
    model.AddMeasurement(Row(i % 4), 10.0);
  }
  model.Fit();
  const std::vector<std::vector<double>> cands = {Row(0), Row(1), Row(2),
                                                  Row(3)};
  EXPECT_FALSE(model.SelectTopK(cands, 2).has_value());
  // Width-mismatched candidates (e.g. a stale model trained on an older
  // feature layout) must decline rather than mis-rank.
  CpuRankModel fresh(opts);
  for (int i = 0; i < 16; ++i) {
    fresh.AddMeasurement(Row(i % 8), std::exp(i % 8));
  }
  fresh.Fit();
  const std::vector<std::vector<double>> wide = {
      {0.0, 1.0, 2.0}, {1.0, 1.0, 2.0}, {2.0, 1.0, 2.0}};
  EXPECT_FALSE(fresh.SelectTopK(wide, 2).has_value());
  // Nothing to prune: keep >= candidates.
  const std::vector<std::vector<double>> two = {Row(0), Row(1)};
  EXPECT_FALSE(fresh.SelectTopK(two, 2).has_value());
}

TEST(CpuRankModelTest, RejectsBadMeasurementsAndCapsWindow) {
  CpuRankModel::Options opts;
  opts.max_rows = 4;
  CpuRankModel model(opts);
  model.AddMeasurement(Row(1), 0.0);    // non-positive
  model.AddMeasurement(Row(1), -3.0);   // negative
  model.AddMeasurement(Row(1), std::nan(""));  // non-finite
  EXPECT_EQ(model.rows(), 0);
  for (int i = 0; i < 10; ++i) {
    model.AddMeasurement(Row(i), 1.0 + i);
  }
  EXPECT_EQ(model.rows(), 4);  // drop-oldest window
}

// ---------------------------------------------------------------------------
// Tuned-registry lookups: counter exactness and neighbor preference.
// ---------------------------------------------------------------------------

struct LookupDeltas {
  int64_t hit0, miss0, near0;
  LookupDeltas() {
    metrics::Registry& reg = metrics::Registry::Global();
    hit0 = reg.GetCounter("cpu.tuned.lookup.hit").value();
    miss0 = reg.GetCounter("cpu.tuned.lookup.miss").value();
    near0 = reg.GetCounter("cpu.tuned.lookup.near").value();
  }
  int64_t hit() const {
    return metrics::Registry::Global()
               .GetCounter("cpu.tuned.lookup.hit")
               .value() -
           hit0;
  }
  int64_t miss() const {
    return metrics::Registry::Global()
               .GetCounter("cpu.tuned.lookup.miss")
               .value() -
           miss0;
  }
  int64_t near() const {
    return metrics::Registry::Global()
               .GetCounter("cpu.tuned.lookup.near")
               .value() -
           near0;
  }
};

TEST(NearBatchLookupTest, EachRequestFeedsExactlyOneCounter) {
  cpukernels::ClearTunedBlocks();
  const BlockConfig small = BlockConfig::Make(kMR, 8, kNR).value();
  const BlockConfig big = BlockConfig::Make(8 * kMR, 16, 2 * kNR).value();
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 2, 16, 32, small));
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 8, 16, 32, big));

  {
    // Exact hit: only the hit counter moves.  The regression this pins
    // down: the exact probe used to route through the counting lookup,
    // charging a miss alongside every near hit.
    LookupDeltas d;
    auto r = cpukernels::FindTunedBlockNearBatch(
        TunedKind::kGemm, 8, 16, 32, cpukernels::Backend::kFastCpu);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(*r == big);
    EXPECT_EQ(d.hit(), 1);
    EXPECT_EQ(d.miss(), 0);
    EXPECT_EQ(d.near(), 0);
  }
  {
    // Near hit: only the near counter moves — in particular, no miss.
    LookupDeltas d;
    auto r = cpukernels::FindTunedBlockNearBatch(
        TunedKind::kGemm, 4, 16, 32, cpukernels::Backend::kFastCpu);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(d.hit(), 0);
    EXPECT_EQ(d.miss(), 0);
    EXPECT_EQ(d.near(), 1);
  }
  {
    // Both lookups fail: exactly one miss.
    LookupDeltas d;
    EXPECT_FALSE(cpukernels::FindTunedBlockNearBatch(
                     TunedKind::kGemm, 4, 99, 32,
                     cpukernels::Backend::kFastCpu)
                     .has_value());
    EXPECT_EQ(d.hit(), 0);
    EXPECT_EQ(d.miss(), 1);
    EXPECT_EQ(d.near(), 0);
  }
  {
    // Reference backend: gated out before any counter.
    LookupDeltas d;
    EXPECT_FALSE(cpukernels::FindTunedBlockNearBatch(
                     TunedKind::kGemm, 8, 16, 32,
                     cpukernels::Backend::kReference)
                     .has_value());
    EXPECT_EQ(d.hit() + d.miss() + d.near(), 0);
  }
  cpukernels::ClearTunedBlocks();
}

TEST(NearBatchLookupTest, PrefersSmallestAboveOverLargestBelow) {
  cpukernels::ClearTunedBlocks();
  const BlockConfig below = BlockConfig::Make(kMR, 8, kNR).value();
  const BlockConfig above = BlockConfig::Make(8 * kMR, 16, 2 * kNR).value();
  const BlockConfig far_above =
      BlockConfig::Make(16 * kMR, 32, 4 * kNR).value();
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 2, 16, 32, below));
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 12, 16, 32, above));
  ASSERT_TRUE(cpukernels::RegisterTunedBlock(TunedKind::kGemm, 64, 16, 32,
                                             far_above));
  // m=4 sits between 2 and 12: the smallest tuned batch *above* wins (a
  // kernel tuned for a larger batch covers the partial one).
  auto r = cpukernels::FindTunedBlockNearBatch(
      TunedKind::kGemm, 4, 16, 32, cpukernels::Backend::kFastCpu);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r == above);
  // m=100 is above every tuned batch: the largest below is the fallback.
  r = cpukernels::FindTunedBlockNearBatch(TunedKind::kGemm, 100, 16, 32,
                                          cpukernels::Backend::kFastCpu);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r == far_above);
  cpukernels::ClearTunedBlocks();
}

TEST(NearShapeLookupTest, FindsNearestUnderLog2DistanceAcrossAllDims) {
  cpukernels::ClearTunedBlocks();
  EXPECT_FALSE(
      cpukernels::FindTunedBlockNearShape(TunedKind::kGemm, 8, 8, 8)
          .has_value());  // empty registry
  const BlockConfig a = BlockConfig::Make(kMR, 8, kNR).value();
  const BlockConfig b = BlockConfig::Make(8 * kMR, 16, 2 * kNR).value();
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 32, 32, 64, a));
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 512, 512, 512, b));
  // (40, 32, 64) is well within a doubling of the first entry on every
  // axis; unlike NearBatch, differing n/k no longer disqualify a neighbor.
  auto r = cpukernels::FindTunedBlockNearShape(TunedKind::kGemm, 40, 32, 64);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->m, 32);
  EXPECT_EQ(r->n, 32);
  EXPECT_EQ(r->k, 64);
  EXPECT_TRUE(r->block == a);
  EXPECT_NEAR(r->log2_distance, std::log2(40.0 / 32.0), 1e-12);
  // Exact match reports distance 0 (callers skip seeding those).
  r = cpukernels::FindTunedBlockNearShape(TunedKind::kGemm, 512, 512, 512);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->log2_distance, 0.0);
  EXPECT_TRUE(r->block == b);
  // The kind partitions the space.
  EXPECT_FALSE(
      cpukernels::FindTunedBlockNearShape(TunedKind::kConv, 32, 32, 64)
          .has_value());
  // Degenerate queries decline.
  EXPECT_FALSE(
      cpukernels::FindTunedBlockNearShape(TunedKind::kGemm, 0, 8, 8)
          .has_value());
  cpukernels::ClearTunedBlocks();
}

TEST(NearShapeLookupTest, TiesBreakTowardSmallestRegisteredKey) {
  cpukernels::ClearTunedBlocks();
  const BlockConfig a = BlockConfig::Make(kMR, 8, kNR).value();
  const BlockConfig b = BlockConfig::Make(8 * kMR, 16, 2 * kNR).value();
  // 8 and 32 are both one doubling away from 16 on the m axis.
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 8, 64, 64, a));
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 32, 64, 64, b));
  auto r = cpukernels::FindTunedBlockNearShape(TunedKind::kGemm, 16, 64, 64);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->m, 8);  // smallest key among equidistant shapes
  EXPECT_TRUE(r->block == a);
  cpukernels::ClearTunedBlocks();
}

// ---------------------------------------------------------------------------
// Profiler ranked sweeps end to end.
// ---------------------------------------------------------------------------

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

CpuGemmWorkload Gemm(int64_t m, int64_t n, int64_t k) {
  CpuGemmWorkload w;
  w.m = m;
  w.n = n;
  w.k = k;
  return w;
}

TEST(RankedSweepTest, UnconfidentModelFallsBackToFullSweep) {
  cpukernels::ClearTunedBlocks();
  metrics::Counter& fallback =
      metrics::Registry::Global().GetCounter("cpu.tune.ranked.fallback");
  metrics::Counter& ranked_wl =
      metrics::Registry::Global().GetCounter("cpu.tune.ranked.workloads");
  const int64_t fallback0 = fallback.value();
  const int64_t ranked0 = ranked_wl.value();
  Profiler prof(kT4);  // default min_rows = 32: cold model declines
  // Deep-K workload: the enumerator emits several kc/mc values on any
  // cache hierarchy, so the sweep is large enough that ranking *would*
  // prune if the model were confident.
  auto r = prof.ProfileCpuGemm(Gemm(96, 32, 600));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().ranked);
  EXPECT_EQ(r.value().seeded, 0);  // registry was empty
  EXPECT_EQ(r.value().candidates_tried, r.value().candidates_enumerated);
  const auto cands = EnumerateCpuBlockCandidates(
      cpukernels::HostCacheInfo(), 96, 32, 600,
      cpukernels::DefaultNumThreads());
  EXPECT_EQ(r.value().candidates_enumerated, static_cast<int>(cands.size()));
  EXPECT_EQ(fallback.value() - fallback0, 1);
  EXPECT_EQ(ranked_wl.value() - ranked0, 0);
  cpukernels::ClearTunedBlocks();
}

TEST(RankedSweepTest, ConfidentModelMeasuresAStrictSubset) {
  cpukernels::ClearTunedBlocks();
  ProfilerCostModel cost;
  cost.cpu_rank_min_rows = 4;   // confident after one bootstrap sweep
  cost.cpu_rank_min_spread = 0.0;
  Profiler prof(kT4, cost);
  // Bootstrap: the first sweep runs full and trains the model.  Deep-K
  // workloads keep the candidate sets large on any cache hierarchy.
  auto first = prof.ProfileCpuGemm(Gemm(64, 48, 600));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().ranked);
  ASSERT_GE(first.value().candidates_tried, cost.cpu_rank_min_rows);

  metrics::Counter& pruned =
      metrics::Registry::Global().GetCounter("cpu.tune.ranked.pruned");
  const int64_t pruned0 = pruned.value();
  auto second = prof.ProfileCpuGemm(Gemm(96, 32, 600));
  ASSERT_TRUE(second.ok());
  const CpuProfileResult& r = second.value();
  EXPECT_TRUE(r.ranked);
  EXPECT_LT(r.candidates_tried, r.candidates_enumerated);
  EXPECT_GE(r.candidates_tried, cost.cpu_rank_min_keep);
  EXPECT_TRUE(r.block.Validate().ok());
  EXPECT_GT(r.us, 0.0);
  EXPECT_EQ(pruned.value() - pruned0,
            r.candidates_enumerated - r.candidates_tried);
  // The winner is live in the execution registry, like any full sweep.
  auto hit = cpukernels::FindTunedBlockForBackend(
      TunedKind::kGemm, 96, 32, 600, cpukernels::Backend::kFastCpu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit == r.block);
  // Provenance round-trips through the v3 cache record.
  std::ostringstream saved;
  ASSERT_TRUE(prof.SaveCache(saved).ok());
  cpukernels::ClearTunedBlocks();
  Profiler reload(kT4);
  std::istringstream in(saved.str());
  ASSERT_TRUE(reload.LoadCache(in).ok());
  auto warm = reload.ProfileCpuGemm(Gemm(96, 32, 600));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_TRUE(warm.value().ranked);
  EXPECT_EQ(warm.value().candidates_tried, r.candidates_tried);
  EXPECT_EQ(warm.value().candidates_enumerated, r.candidates_enumerated);
  cpukernels::ClearTunedBlocks();
}

TEST(RankedSweepTest, TransferSeedJoinsTheSweep) {
  cpukernels::ClearTunedBlocks();
  // Register a tuned block for a nearby shape that the enumerator will
  // not produce for (24, 16, 32): a deliberately tiny micro-tile block.
  const BlockConfig prior =
      BlockConfig::Make(kMR, 8, kNR, cpukernels::ParallelScheme::kLoopLevel)
          .value();
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 48, 16, 32, prior));
  metrics::Counter& seeded_counter =
      metrics::Registry::Global().GetCounter("cpu.tune.ranked.seeded");
  const int64_t seeded0 = seeded_counter.value();

  Profiler prof(kT4);
  auto r = prof.ProfileCpuGemm(Gemm(24, 16, 32));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().seeded, 1);
  EXPECT_EQ(seeded_counter.value() - seeded0, 1);
  const auto cands = EnumerateCpuBlockCandidates(
      cpukernels::HostCacheInfo(), 24, 16, 32,
      cpukernels::DefaultNumThreads());
  // The seed rides on top of the enumerated set; the cold model still
  // measures everything (no pruning without confidence).
  EXPECT_EQ(r.value().candidates_enumerated,
            static_cast<int>(cands.size()) + 1);
  EXPECT_EQ(r.value().candidates_tried, r.value().candidates_enumerated);
  cpukernels::ClearTunedBlocks();
}

TEST(RankedSweepTest, DisablingRankingRestoresTheExhaustiveBaseline) {
  cpukernels::ClearTunedBlocks();
  // Even with a transfer prior registered, the opt-out must reproduce the
  // historical exhaustive sweep: no seed, no ranking, full measurement.
  const BlockConfig prior = BlockConfig::Make(kMR, 8, kNR).value();
  ASSERT_TRUE(
      cpukernels::RegisterTunedBlock(TunedKind::kGemm, 48, 16, 32, prior));
  ProfilerCostModel cost;
  cost.cpu_ranked_sweep = false;
  Profiler prof(kT4, cost);
  auto r = prof.ProfileCpuGemm(Gemm(24, 16, 32));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ranked);
  EXPECT_EQ(r.value().seeded, 0);
  const auto cands = EnumerateCpuBlockCandidates(
      cpukernels::HostCacheInfo(), 24, 16, 32,
      cpukernels::DefaultNumThreads());
  EXPECT_EQ(r.value().candidates_tried, static_cast<int>(cands.size()));
  EXPECT_EQ(r.value().candidates_enumerated, static_cast<int>(cands.size()));
  cpukernels::ClearTunedBlocks();
}

}  // namespace
}  // namespace bolt
