// Differential tests for the blocked CPU kernel backend: every fast-path
// result must match the naive reference loops bit-for-bit (the kernels
// accumulate in the same ascending-k order and quantize at the same op
// boundaries), for every shape, layout, epilogue, blocking, and thread
// count.  MaxAbsDiff is the comparator so the padding-tap signed-zero
// difference (blocked adds +-0.0 terms the reference loop skips) is not
// flagged.

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "cpukernels/backend.h"
#include "cpukernels/conv.h"
#include "cpukernels/gemm.h"
#include "ir/graph.h"
#include "ir/interpreter.h"
#include "testing/diff_harness.h"

namespace bolt {
namespace {

Tensor RandomTensor(TensorDesc desc, uint64_t seed = 1) {
  return difftest::RandomTensor(std::move(desc), seed);
}

const std::vector<ActivationKind>& kAllActivations = difftest::kActivations;

// ---------------------------------------------------------------------------
// Backend environment-variable parsing (strict from_chars discipline)
// ---------------------------------------------------------------------------

TEST(BackendEnvTest, ParseCpuThreadsRejectsMalformedValues) {
  using cpukernels::ParseCpuThreadsEnv;
  EXPECT_EQ(ParseCpuThreadsEnv("4"), 4);
  EXPECT_EQ(ParseCpuThreadsEnv("1"), 1);
  EXPECT_EQ(ParseCpuThreadsEnv("4096"), 4096);
  // atoi used to accept "4abc" as 4 and had UB on overflow.
  EXPECT_EQ(ParseCpuThreadsEnv("4abc"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv("abc"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv(""), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv(" 4"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv("4 "), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv("4.5"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv("0"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv("-3"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv("4097"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv("99999999999999999999"), std::nullopt);
  EXPECT_EQ(ParseCpuThreadsEnv(nullptr), std::nullopt);
}

TEST(BackendEnvTest, ParseCpuBackendRecognizedValuesOnly) {
  using cpukernels::Backend;
  using cpukernels::ParseCpuBackendEnv;
  EXPECT_EQ(ParseCpuBackendEnv("ref"), Backend::kReference);
  EXPECT_EQ(ParseCpuBackendEnv("reference"), Backend::kReference);
  EXPECT_EQ(ParseCpuBackendEnv("naive"), Backend::kReference);
  EXPECT_EQ(ParseCpuBackendEnv(""), Backend::kFastCpu);
  EXPECT_EQ(ParseCpuBackendEnv("fast"), Backend::kFastCpu);
  EXPECT_EQ(ParseCpuBackendEnv("cpukernels"), Backend::kFastCpu);
  // Unrecognized values are rejected (the caller falls back to fast, but
  // the parse itself must not silently guess).
  EXPECT_EQ(ParseCpuBackendEnv("REF"), std::nullopt);
  EXPECT_EQ(ParseCpuBackendEnv("ref "), std::nullopt);
  EXPECT_EQ(ParseCpuBackendEnv("refx"), std::nullopt);
  EXPECT_EQ(ParseCpuBackendEnv(nullptr), std::nullopt);
}

// ---------------------------------------------------------------------------
// GEMM vs refop::Dense
// ---------------------------------------------------------------------------

TEST(CpuGemmTest, MatchesReferenceAcrossShapes) {
  // Odd sizes straddle every micro-tile and cache-block boundary
  // (kMR=4, kNR=8, and the default mc/kc blocking).
  const int64_t sizes[] = {1, 3, 7, 8, 17, 65};
  for (int64_t m : sizes) {
    for (int64_t n : sizes) {
      for (int64_t k : {int64_t{1}, int64_t{9}, int64_t{260}}) {
        for (DType dt : {DType::kFloat16, DType::kFloat32}) {
          Tensor a = RandomTensor(TensorDesc(dt, {m, k}), 10 * m + n);
          Tensor w = RandomTensor(TensorDesc(dt, {n, k}), 20 * n + k);
          cpukernels::Epilogue epi;
          epi.output_dtype = dt;
          epi.boundary_quantize = true;
          Tensor got = cpukernels::Gemm(a, w, epi);
          Tensor want = refop::Dense(a, w);
          EXPECT_EQ(got.MaxAbsDiff(want), 0.0f)
              << "m=" << m << " n=" << n << " k=" << k << " "
              << DTypeName(dt);
        }
      }
    }
  }
}

TEST(CpuGemmTest, TinyBlockingExercisesAllEdges) {
  // A deliberately tiny block config forces multiple jc/pc/ic iterations
  // and partial tiles in every dimension.
  cpukernels::BlockConfig cfg;
  cfg.mc = 8;
  cfg.kc = 8;
  cfg.nc = 16;
  Tensor a = RandomTensor(TensorDesc(DType::kFloat16, {37, 53}), 3);
  Tensor w = RandomTensor(TensorDesc(DType::kFloat16, {29, 53}), 4);
  cpukernels::Epilogue epi;
  epi.output_dtype = DType::kFloat16;
  epi.boundary_quantize = true;
  Tensor got = cpukernels::Gemm(a, w, epi, cfg);
  EXPECT_EQ(got.MaxAbsDiff(refop::Dense(a, w)), 0.0f);
}

TEST(CpuGemmTest, FusedEpilogueMatchesUnfusedChain) {
  Tensor a = RandomTensor(TensorDesc(DType::kFloat16, {33, 70}), 5);
  Tensor w = RandomTensor(TensorDesc(DType::kFloat16, {21, 70}), 6);
  Tensor bias = RandomTensor(TensorDesc(DType::kFloat16, {21}), 7);
  for (ActivationKind act : kAllActivations) {
    cpukernels::Epilogue epi;
    epi.output_dtype = DType::kFloat16;
    epi.boundary_quantize = true;
    epi.bias = bias.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Gemm(a, w, epi);
    Tensor want =
        refop::Activation(refop::BiasAdd(refop::Dense(a, w), bias), act);
    EXPECT_EQ(got.MaxAbsDiff(want), 0.0f) << ActivationName(act);
  }
}

TEST(CpuGemmTest, ResidualEpilogueMatchesUnfusedChain) {
  Tensor a = RandomTensor(TensorDesc(DType::kFloat16, {19, 40}), 8);
  Tensor w = RandomTensor(TensorDesc(DType::kFloat16, {26, 40}), 9);
  Tensor res = RandomTensor(TensorDesc(DType::kFloat16, {19, 26}), 10);
  cpukernels::Epilogue epi;
  epi.output_dtype = DType::kFloat16;
  epi.boundary_quantize = true;
  epi.acts = {ActivationKind::kRelu};
  epi.residual = res.data().data();
  Tensor got = cpukernels::Gemm(a, w, epi);
  Tensor want = refop::Add(
      refop::Activation(refop::Dense(a, w), ActivationKind::kRelu), res);
  EXPECT_EQ(got.MaxAbsDiff(want), 0.0f);
}

TEST(CpuGemmTest, CutliteModeQuantizesOnce) {
  // cutlite-mode epilogue: Act(alpha*acc + beta*src + bias), one final
  // quantize — not per-stage.  Verify against a hand-rolled loop.
  const int64_t m = 11, n = 13, k = 31;
  Tensor a = RandomTensor(TensorDesc(DType::kFloat32, {m, k}), 11);
  Tensor w = RandomTensor(TensorDesc(DType::kFloat32, {n, k}), 12);
  Tensor bias = RandomTensor(TensorDesc(DType::kFloat32, {n}), 13);
  Tensor res = RandomTensor(TensorDesc(DType::kFloat32, {m, n}), 14);
  cpukernels::Epilogue epi;
  epi.alpha = 1.25f;
  epi.beta = -0.5f;
  epi.bias = bias.data().data();
  epi.residual = res.data().data();
  epi.acts = {ActivationKind::kRelu};
  epi.output_dtype = DType::kFloat16;
  Tensor got = cpukernels::Gemm(a, w, epi);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.at(i * k + kk) * w.at(j * k + kk);
      }
      float v = 1.25f * acc - 0.5f * res.at(i * n + j) + bias.at(j);
      v = half_t::Quantize(std::max(v, 0.0f));
      EXPECT_EQ(got.at(i * n + j), v) << i << "," << j;
    }
  }
}

TEST(CpuGemmTest, BitwiseDeterministicAcrossThreadCounts) {
  Tensor a = RandomTensor(TensorDesc(DType::kFloat16, {130, 300}), 15);
  Tensor w = RandomTensor(TensorDesc(DType::kFloat16, {67, 300}), 16);
  Tensor bias = RandomTensor(TensorDesc(DType::kFloat16, {67}), 17);
  cpukernels::Epilogue epi;
  epi.output_dtype = DType::kFloat16;
  epi.boundary_quantize = true;
  epi.bias = bias.data().data();
  epi.acts = {ActivationKind::kGelu};
  Tensor serial = cpukernels::Gemm(a, w, epi);
  for (int threads : {1, 2, 5}) {
    ThreadPool pool(threads);
    Tensor parallel = cpukernels::Gemm(a, w, epi, {}, &pool);
    // Identical accumulation order -> identical bits, zero signs included.
    ASSERT_EQ(serial.data().size(), parallel.data().size());
    EXPECT_EQ(std::memcmp(serial.data().data(), parallel.data().data(),
                          serial.data().size() * sizeof(float)),
              0)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Conv2d vs refop::Conv2d
// ---------------------------------------------------------------------------

Conv2dAttrs Attrs(int64_t stride, int64_t pad, int64_t dilation = 1) {
  Conv2dAttrs a;
  a.stride_h = a.stride_w = stride;
  a.pad_h = a.pad_w = pad;
  a.dilation_h = a.dilation_w = dilation;
  return a;
}

cpukernels::ConvParams Params(const Conv2dAttrs& a) {
  cpukernels::ConvParams p;
  p.stride_h = a.stride_h;
  p.stride_w = a.stride_w;
  p.pad_h = a.pad_h;
  p.pad_w = a.pad_w;
  p.dilation_h = a.dilation_h;
  p.dilation_w = a.dilation_w;
  return p;
}

void ExpectConvMatchesReference(const Tensor& x, const Tensor& w,
                                const Conv2dAttrs& a,
                                const std::string& what) {
  cpukernels::Epilogue epi;
  epi.output_dtype = x.dtype();
  epi.boundary_quantize = true;
  Tensor got = cpukernels::Conv2d(x, w, Params(a), epi);
  Tensor want = refop::Conv2d(x, w, a);
  EXPECT_EQ(got.desc(), want.desc()) << what;
  EXPECT_EQ(got.MaxAbsDiff(want), 0.0f) << what;
}

TEST(CpuConvTest, MatchesReferenceAcrossGeometries) {
  struct Case {
    int64_t h, c, oc, kernel, stride, pad, dilation;
  };
  const Case cases[] = {
      {9, 3, 5, 3, 1, 1, 1},   // odd channels, same-pad 3x3
      {8, 4, 8, 1, 1, 0, 1},   // pointwise
      {11, 6, 7, 3, 2, 1, 1},  // strided, odd spatial
      {9, 5, 6, 5, 1, 2, 1},   // 5x5
      {13, 4, 4, 3, 1, 2, 2},  // dilated
      {7, 3, 9, 3, 2, 0, 1},   // strided valid-pad
      {7, 8, 16, 3, 1, 1, 1},  // block-aligned channels (NCHWc-eligible)
      {6, 16, 8, 1, 1, 0, 1},  // two channel blocks, pointwise
  };
  for (const Case& c : cases) {
    for (Layout layout :
         {Layout::kNHWC, Layout::kNCHW, Layout::kNCHWc}) {
      // NCHWc requires block-aligned channels; skip ineligible cases.
      if (layout == Layout::kNCHWc &&
          (c.c % kNCHWcBlock != 0 || c.oc % kNCHWcBlock != 0)) {
        continue;
      }
      const std::string what =
          StrCat("h=", c.h, " c=", c.c, " oc=", c.oc, " k=", c.kernel,
                 " s=", c.stride, " p=", c.pad, " d=", c.dilation, " ",
                 LayoutName(layout));
      std::vector<int64_t> xs =
          layout == Layout::kNHWC
              ? std::vector<int64_t>{2, c.h, c.h, c.c}
              : std::vector<int64_t>{2, c.c, c.h, c.h};
      Tensor x = RandomTensor(TensorDesc(DType::kFloat16, xs, layout),
                              c.h * 100 + c.c);
      Tensor w = RandomTensor(
          TensorDesc(DType::kFloat16, {c.oc, c.kernel, c.kernel, c.c}),
          c.oc * 100 + c.kernel);
      ExpectConvMatchesReference(x, w, Attrs(c.stride, c.pad, c.dilation),
                                 what);
    }
  }
}

TEST(CpuConvTest, FusedEpilogueMatchesUnfusedChain) {
  Tensor x = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 9, 9, 6}, Layout::kNHWC), 18);
  Tensor w = RandomTensor(TensorDesc(DType::kFloat16, {10, 3, 3, 6}), 19);
  Tensor bias = RandomTensor(TensorDesc(DType::kFloat16, {10}), 20);
  const Conv2dAttrs a = Attrs(1, 1);
  for (ActivationKind act : kAllActivations) {
    cpukernels::Epilogue epi;
    epi.output_dtype = DType::kFloat16;
    epi.boundary_quantize = true;
    epi.bias = bias.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Conv2d(x, w, Params(a), epi);
    Tensor want = refop::Activation(
        refop::BiasAdd(refop::Conv2d(x, w, a), bias), act);
    EXPECT_EQ(got.MaxAbsDiff(want), 0.0f) << ActivationName(act);
  }
}

TEST(CpuConvTest, BitwiseDeterministicAcrossThreadCounts) {
  Tensor x = RandomTensor(
      TensorDesc(DType::kFloat16, {2, 14, 14, 24}, Layout::kNHWC), 21);
  Tensor w = RandomTensor(TensorDesc(DType::kFloat16, {32, 3, 3, 24}), 22);
  cpukernels::Epilogue epi;
  epi.output_dtype = DType::kFloat16;
  epi.boundary_quantize = true;
  Tensor serial = cpukernels::Conv2d(x, w, Params(Attrs(1, 1)), epi);
  for (int threads : {2, 5}) {
    ThreadPool pool(threads);
    Tensor parallel =
        cpukernels::Conv2d(x, w, Params(Attrs(1, 1)), epi, {}, &pool);
    EXPECT_EQ(std::memcmp(serial.data().data(), parallel.data().data(),
                          serial.data().size() * sizeof(float)),
              0)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Interpreter differential: fast backend vs RefExecutor
// ---------------------------------------------------------------------------

void ExpectAllModesMatchReference(const Graph& g,
                                  const std::map<std::string, Tensor>& in) {
  RefExecutor oracle(g);
  auto want = oracle.Run(in);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  for (bool fuse : {false, true}) {
    for (bool parallel : {false, true}) {
      InterpreterOptions o;
      o.backend = cpukernels::Backend::kFastCpu;
      o.fuse_epilogues = fuse;
      o.parallel = parallel;
      Interpreter interp(g, o);
      auto got = interp.Run(in);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value().size(), want.value().size());
      for (size_t i = 0; i < want.value().size(); ++i) {
        EXPECT_EQ(got.value()[i].MaxAbsDiff(want.value()[i]), 0.0f)
            << "output " << i << " fuse=" << fuse
            << " parallel=" << parallel;
      }
    }
  }
}

TEST(InterpreterDifferentialTest, ConvBiasActChain) {
  for (Layout layout : {Layout::kNHWC, Layout::kNCHW}) {
    GraphBuilder b(DType::kFloat16, layout);
    std::vector<int64_t> xs = layout == Layout::kNHWC
                                  ? std::vector<int64_t>{1, 10, 10, 5}
                                  : std::vector<int64_t>{1, 5, 10, 10};
    NodeId x = b.Input("x", xs);
    NodeId w = b.Constant(
        "w", RandomTensor(TensorDesc(DType::kFloat16, {7, 3, 3, 5}), 23));
    NodeId bias =
        b.Constant("b", RandomTensor(TensorDesc(DType::kFloat16, {7}), 24));
    NodeId y = b.Activation(b.BiasAdd(b.Conv2d(x, w, Attrs(1, 1)), bias),
                            ActivationKind::kGelu);
    b.MarkOutput(y);
    std::map<std::string, Tensor> in;
    in["x"] = RandomTensor(TensorDesc(DType::kFloat16, xs, layout), 25);
    ExpectAllModesMatchReference(b.Build().value(), in);
  }
}

TEST(InterpreterDifferentialTest, ResidualDiamond) {
  // Two conv branches from one source meeting at a single Add: only one
  // chain may fold the Add; the other must stop before it.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 8, 8, 6});
  NodeId w1 = b.Constant(
      "w1", RandomTensor(TensorDesc(DType::kFloat16, {6, 3, 3, 6}), 26));
  NodeId w2 = b.Constant(
      "w2", RandomTensor(TensorDesc(DType::kFloat16, {6, 3, 3, 6}), 27));
  NodeId left = b.Activation(b.Conv2d(x, w1, Attrs(1, 1)),
                             ActivationKind::kRelu);
  NodeId right = b.Conv2d(x, w2, Attrs(1, 1));
  NodeId y = b.Activation(b.Add(left, right), ActivationKind::kRelu);
  b.MarkOutput(y);
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 8, 8, 6}, Layout::kNHWC), 28);
  ExpectAllModesMatchReference(b.Build().value(), in);
}

TEST(InterpreterDifferentialTest, IdentityResidualBlock) {
  // ResNet basic block: the residual is the block input, which also feeds
  // the first conv — exercises the uses_-count guard on buffer stealing.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 7, 7, 8});
  NodeId w1 = b.Constant(
      "w1", RandomTensor(TensorDesc(DType::kFloat16, {8, 3, 3, 8}), 29));
  NodeId w2 = b.Constant(
      "w2", RandomTensor(TensorDesc(DType::kFloat16, {8, 3, 3, 8}), 30));
  NodeId c1 = b.Activation(b.Conv2d(x, w1, Attrs(1, 1)),
                           ActivationKind::kRelu);
  NodeId c2 = b.Conv2d(c1, w2, Attrs(1, 1));
  NodeId y = b.Activation(b.Add(c2, x), ActivationKind::kRelu);
  b.MarkOutput(y);
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 7, 7, 8}, Layout::kNHWC), 31);
  ExpectAllModesMatchReference(b.Build().value(), in);
}

TEST(InterpreterDifferentialTest, AddOfSameNode) {
  // Add(x, x): both operands alias one node, so in-place buffer stealing
  // must fall back to a copy (uses_ counts edges, not distinct nodes).
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 4, 4, 3});
  NodeId r = b.Activation(x, ActivationKind::kRelu);
  NodeId y = b.Add(r, r);
  b.MarkOutput(y);
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 4, 4, 3}, Layout::kNHWC), 32);
  ExpectAllModesMatchReference(b.Build().value(), in);
}

TEST(InterpreterDifferentialTest, IntermediateIsGraphOutput) {
  // The conv result is both a graph output and the head of an epilogue
  // chain — fusion must not swallow it.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 6, 6, 4});
  NodeId w = b.Constant(
      "w", RandomTensor(TensorDesc(DType::kFloat16, {5, 3, 3, 4}), 33));
  NodeId c = b.Conv2d(x, w, Attrs(1, 1));
  NodeId y = b.Activation(c, ActivationKind::kSigmoid);
  b.MarkOutput(c);
  b.MarkOutput(y);
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 6, 6, 4}, Layout::kNHWC), 34);
  ExpectAllModesMatchReference(b.Build().value(), in);
}

TEST(InterpreterDifferentialTest, DenseChainWithElementwiseTail) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {5, 24});
  NodeId w1 = b.Constant(
      "w1", RandomTensor(TensorDesc(DType::kFloat16, {16, 24}), 35));
  NodeId b1 =
      b.Constant("b1", RandomTensor(TensorDesc(DType::kFloat16, {16}), 36));
  NodeId w2 = b.Constant(
      "w2", RandomTensor(TensorDesc(DType::kFloat16, {16, 16}), 37));
  NodeId d1 = b.Activation(b.BiasAdd(b.Dense(x, w1), b1),
                           ActivationKind::kRelu);
  NodeId d2 = b.Dense(d1, w2);
  NodeId y = b.Activation(b.Add(d2, d1), ActivationKind::kSoftplus);
  b.MarkOutput(y);
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(TensorDesc(DType::kFloat16, {5, 24}), 38);
  ExpectAllModesMatchReference(b.Build().value(), in);
}

TEST(InterpreterDifferentialTest, DeterministicAcrossThreadCounts) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 12, 12, 16});
  NodeId w = b.Constant(
      "w", RandomTensor(TensorDesc(DType::kFloat16, {24, 3, 3, 16}), 39));
  NodeId bias = b.Constant(
      "b", RandomTensor(TensorDesc(DType::kFloat16, {24}), 40));
  NodeId y = b.Activation(b.BiasAdd(b.Conv2d(x, w, Attrs(1, 1)), bias),
                          ActivationKind::kRelu);
  b.MarkOutput(y);
  Graph g = b.Build().value();
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 12, 12, 16}, Layout::kNHWC), 41);

  InterpreterOptions serial;
  serial.backend = cpukernels::Backend::kFastCpu;
  serial.parallel = false;
  Tensor base = Interpreter(g, serial).Run(in).value()[0];
  for (int threads : {1, 2, 5}) {
    ThreadPool pool(threads);
    InterpreterOptions o;
    o.backend = cpukernels::Backend::kFastCpu;
    o.pool = &pool;
    Tensor got = Interpreter(g, o).Run(in).value()[0];
    EXPECT_EQ(std::memcmp(base.data().data(), got.data().data(),
                          base.data().size() * sizeof(float)),
              0)
        << threads << " threads";
  }
}

TEST(InterpreterDifferentialTest, RandomizedGraphSweep) {
  // Randomized conv/dense chains with varying geometry; every graph is
  // checked in all four backend modes against the oracle.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t h = rng.Uniform(5, 12);
    // Half the trials use block-aligned channels so the always-drawn
    // layout axis can land on blocked NCHWc.
    const bool aligned = trial % 2 == 0;
    const int64_t c =
        aligned ? kNCHWcBlock * rng.Uniform(1, 2) : rng.Uniform(1, 9);
    const int64_t oc =
        aligned ? kNCHWcBlock * rng.Uniform(1, 2) : rng.Uniform(1, 11);
    const Layout layout = difftest::RandomConvLayout(rng, c, oc);
    const int64_t kernel = 1 + 2 * rng.Uniform(0, 1);
    const int64_t stride = rng.Uniform(1, 2);
    const int64_t pad = rng.Uniform(0, kernel - 1);
    GraphBuilder b(DType::kFloat16, layout);
    std::vector<int64_t> xs = layout == Layout::kNHWC
                                  ? std::vector<int64_t>{1, h, h, c}
                                  : std::vector<int64_t>{1, c, h, h};
    NodeId x = b.Input("x", xs);
    NodeId w = b.Constant(
        "w", RandomTensor(
                 TensorDesc(DType::kFloat16, {oc, kernel, kernel, c}),
                 500 + trial));
    NodeId y = b.Conv2d(x, w, Attrs(stride, pad));
    if (trial % 3 == 0) {
      NodeId bias = b.Constant(
          "b", RandomTensor(TensorDesc(DType::kFloat16, {oc}),
                            600 + trial));
      y = b.BiasAdd(y, bias);
    }
    y = b.Activation(y, kAllActivations[trial % kAllActivations.size()]);
    b.MarkOutput(y);
    std::map<std::string, Tensor> in;
    in["x"] =
        RandomTensor(TensorDesc(DType::kFloat16, xs, layout), 700 + trial);
    SCOPED_TRACE(StrCat("trial=", trial, " h=", h, " c=", c, " oc=", oc,
                        " k=", kernel, " s=", stride, " p=", pad, " ",
                        LayoutName(layout)));
    ExpectAllModesMatchReference(b.Build().value(), in);
  }
}

}  // namespace
}  // namespace bolt
