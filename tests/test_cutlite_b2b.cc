// Tests for persistent (back-to-back) kernels: threadblock residence,
// RF- vs shared-memory-resident strategies, exact functional equivalence
// with the unfused pipeline, and the performance invariants of Table 1/2.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cutlite/b2b.h"
#include "models/workloads.h"

namespace bolt {
namespace cutlite {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, {rows, cols}, Layout::kRowMajor));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  t.Quantize();
  return t;
}

KernelConfig StageConfig(int tb_m, int tb_n, int warp_m, int warp_n,
                         int k_align = 8, int n_align = 8) {
  KernelConfig c;
  c.threadblock = GemmShape(tb_m, tb_n, 32);
  c.warp = GemmShape(warp_m, warp_n, 32);
  c.instruction = GemmShape(16, 8, 8);
  c.stages = 2;
  c.swizzle = Swizzle::kIdentity1;
  c.align_a = c.align_b = k_align;
  c.align_c = n_align;
  return c;
}

std::vector<B2bStage> MakeStages() {
  // GEMM0: 512x64x128, GEMM1: 512x32x64 — RF-residence compatible.
  EpilogueSpec relu =
      EpilogueSpec::WithActivation(ActivationKind::kRelu, false);
  return {
      B2bStage{GemmCoord(512, 64, 128), StageConfig(64, 64, 32, 64), relu},
      B2bStage{GemmCoord(512, 32, 64), StageConfig(64, 32, 32, 32), relu},
  };
}

TEST(ResidenceTest, AcceptsCompatibleStages) {
  EXPECT_TRUE(CheckThreadblockResidenceGemm(MakeStages()).ok());
  EXPECT_TRUE(CheckRfResidenceGemm(MakeStages(), kT4).ok());
}

TEST(ResidenceTest, RejectsThreadblockNotCoveringN) {
  auto stages = MakeStages();
  stages[0].config.threadblock = GemmShape(64, 32, 32);  // N=64 needs 2 tiles
  stages[0].config.warp = GemmShape(32, 32, 32);
  EXPECT_EQ(CheckThreadblockResidenceGemm(stages).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResidenceTest, RejectsMismatchedM) {
  auto stages = MakeStages();
  stages[1].problem.m = 256;
  EXPECT_FALSE(CheckThreadblockResidenceGemm(stages).ok());
}

TEST(ResidenceTest, RejectsUnchainedK) {
  auto stages = MakeStages();
  stages[1].problem.k = 128;  // must equal N0 = 64
  EXPECT_FALSE(CheckThreadblockResidenceGemm(stages).ok());
}

TEST(ResidenceTest, RfRequiresWarpNEqualTbN) {
  auto stages = MakeStages();
  stages[0].config.warp = GemmShape(64, 32, 32);  // Warp_N != TB_N
  EXPECT_TRUE(CheckThreadblockResidenceGemm(stages).ok());
  EXPECT_EQ(CheckRfResidenceGemm(stages, kT4).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResidenceTest, SingleStageRejected) {
  std::vector<B2bStage> one = {MakeStages()[0]};
  EXPECT_FALSE(CheckThreadblockResidenceGemm(one).ok());
}

TEST(B2bGemmTest, FusedMatchesUnfusedExactly) {
  auto stages = MakeStages();
  auto kernel =
      B2bGemmKernel::Create(stages, ResidenceKind::kRegisterFile, kT4);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

  Tensor a0 = RandomMatrix(512, 128, 31);
  Tensor w0 = RandomMatrix(64, 128, 32);
  Tensor w1 = RandomMatrix(32, 64, 33);
  auto fused = kernel->Run(a0, {&w0, &w1}, {nullptr, nullptr});
  ASSERT_TRUE(fused.ok());

  // Unfused: run the two stage kernels sequentially.
  GemmKernel k0(stages[0].problem, stages[0].config, stages[0].epilogue);
  GemmKernel k1(stages[1].problem, stages[1].config, stages[1].epilogue);
  GemmArguments args0;
  args0.a = &a0;
  args0.w = &w0;
  auto d0 = k0.Run(args0);
  ASSERT_TRUE(d0.ok());
  GemmArguments args1;
  args1.a = &d0.value();
  args1.w = &w1;
  auto d1 = k1.Run(args1);
  ASSERT_TRUE(d1.ok());

  // The persistent kernel quantizes the intermediate to FP16 exactly as
  // the unfused pipeline stores it, so results match bit-for-bit.
  EXPECT_EQ(fused.value().MaxAbsDiff(d1.value()), 0.0f);
}

TEST(B2bGemmTest, FusedFasterThanUnfusedOnMemoryBoundChain) {
  auto stages = MakeStages();
  // Large M makes the chain memory-bound — the paper's target regime.
  for (auto& s : stages) s.problem.m = 65536;
  auto kernel =
      B2bGemmKernel::Create(stages, ResidenceKind::kRegisterFile, kT4);
  ASSERT_TRUE(kernel.ok());
  EXPECT_LT(kernel->EstimateUs(kT4), kernel->EstimateUnfusedUs(kT4));
}

TEST(B2bGemmTest, SmemResidenceRelaxesWarpConstraint) {
  // A stage whose warps split N violates RF residence but is accepted by
  // the shared-memory strategy — the exact relaxation of Section 3.1.1.
  auto stages = MakeStages();
  stages[0].config.warp = GemmShape(32, 32, 32);  // Warp_N != TB_N
  stages[1].config.warp = GemmShape(32, 16, 32);  // keep warp counts equal
  EXPECT_FALSE(
      B2bGemmKernel::Create(stages, ResidenceKind::kRegisterFile, kT4)
          .ok());
  EXPECT_TRUE(
      B2bGemmKernel::Create(stages, ResidenceKind::kSharedMemory, kT4)
          .ok());
}

TEST(B2bGemmTest, SmemResidenceChargesIntermediateRoundTrip) {
  // With identical stage configs, the smem-resident estimate includes the
  // RF->smem->RF round trip of the intermediate tile in its mainloop.
  auto stages = MakeStages();
  for (auto& s : stages) s.problem.m = 65536;
  auto rf =
      B2bGemmKernel::Create(stages, ResidenceKind::kRegisterFile, kT4);
  auto smem =
      B2bGemmKernel::Create(stages, ResidenceKind::kSharedMemory, kT4);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(smem.ok());
  // Same per-stage mainloops; the difference between the two strategies
  // is occupancy (RF pressure vs smem footprint) plus the explicit smem
  // transfer term. Both must be finite and within 2x of each other.
  const double rf_us = rf->EstimateUs(kT4);
  const double smem_us = smem->EstimateUs(kT4);
  EXPECT_GT(rf_us, 0.0);
  EXPECT_GT(smem_us, 0.0);
  EXPECT_LT(std::max(rf_us, smem_us) / std::min(rf_us, smem_us), 2.0);
}

TEST(B2bGemmTest, ThreeStageChain) {
  EpilogueSpec relu =
      EpilogueSpec::WithActivation(ActivationKind::kRelu, false);
  std::vector<B2bStage> stages = {
      B2bStage{GemmCoord(1024, 64, 32), StageConfig(64, 64, 32, 64), relu},
      B2bStage{GemmCoord(1024, 32, 64), StageConfig(64, 32, 32, 32), relu},
      B2bStage{GemmCoord(1024, 16, 32),
               StageConfig(64, 16, 32, 16, 8, 8), relu},
  };
  auto kernel =
      B2bGemmKernel::Create(stages, ResidenceKind::kRegisterFile, kT4);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

  Tensor a0 = RandomMatrix(1024, 32, 41);
  Tensor w0 = RandomMatrix(64, 32, 42);
  Tensor w1 = RandomMatrix(32, 64, 43);
  Tensor w2 = RandomMatrix(16, 32, 44);
  auto fused = kernel->Run(a0, {&w0, &w1, &w2},
                           {nullptr, nullptr, nullptr});
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused.value().shape(), (std::vector<int64_t>{1024, 16}));
}

// ---- Conv fusion ----------------------------------------------------------

std::vector<B2bConvStage> MakeConvStages() {
  ConvProblem c0;
  c0.n = 1;
  c0.h = c0.w = 8;
  c0.c = 8;
  c0.k = 16;
  c0.r = c0.s = 3;
  c0.pad_h = c0.pad_w = 1;
  ConvProblem c1;
  c1.n = 1;
  c1.h = c1.w = 8;
  c1.c = 16;
  c1.k = 16;
  c1.r = c1.s = 1;
  EpilogueSpec relu =
      EpilogueSpec::WithActivation(ActivationKind::kRelu, false);
  return {
      B2bConvStage{c0, StageConfig(64, 16, 32, 16), relu},
      B2bConvStage{c1, StageConfig(64, 16, 32, 16), relu},
  };
}

TEST(B2bConvTest, ResidenceRequiresPointwiseSecondStage) {
  auto stages = MakeConvStages();
  stages[1].problem.r = stages[1].problem.s = 3;
  stages[1].problem.pad_h = stages[1].problem.pad_w = 1;
  EXPECT_FALSE(CheckThreadblockResidenceConv(stages).ok());
}

TEST(B2bConvTest, ResidenceRequiresChannelChaining) {
  auto stages = MakeConvStages();
  stages[1].problem.c = 32;
  EXPECT_FALSE(CheckThreadblockResidenceConv(stages).ok());
}

TEST(B2bConvTest, FusedMatchesUnfusedExactly) {
  auto stages = MakeConvStages();
  auto kernel =
      B2bConvKernel::Create(stages, ResidenceKind::kRegisterFile, kT4);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

  Rng rng(51);
  Tensor x(TensorDesc(DType::kFloat16, {1, 8, 8, 8}, Layout::kNHWC));
  rng.FillNormal(x.data(), 0.3f);
  x.Quantize();
  Tensor w0(TensorDesc(DType::kFloat16, {16, 3, 3, 8}, Layout::kAny));
  rng.FillNormal(w0.data(), 0.3f);
  w0.Quantize();
  Tensor w1(TensorDesc(DType::kFloat16, {16, 1, 1, 16}, Layout::kAny));
  rng.FillNormal(w1.data(), 0.3f);
  w1.Quantize();

  auto fused = kernel->Run(x, {&w0, &w1}, {nullptr, nullptr});
  ASSERT_TRUE(fused.ok());

  Conv2dKernel k0(stages[0].problem, stages[0].config, stages[0].epilogue);
  Conv2dKernel k1(stages[1].problem, stages[1].config, stages[1].epilogue);
  auto d0 = k0.Run(x, w0);
  ASSERT_TRUE(d0.ok());
  auto d1 = k1.Run(d0.value(), w1);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(fused.value().MaxAbsDiff(d1.value()), 0.0f);
}

TEST(B2bConvTest, PaperWorkloadsAreFeasibleAndBeneficialWhenAligned) {
  // Table 2 rows with aligned input channels (48/64).
  for (const auto& w : workloads::Table2Workloads()) {
    if (w.conv0.c % 8 != 0) continue;
    EpilogueSpec e = EpilogueSpec::WithActivation(ActivationKind::kRelu);
    const int tb_n0 = static_cast<int>(w.conv0.k);
    const int tb_n1 = static_cast<int>(w.conv1.k);
    std::vector<B2bConvStage> stages = {
        B2bConvStage{w.conv0, StageConfig(64, tb_n0, 32, tb_n0), e},
        B2bConvStage{w.conv1, StageConfig(64, tb_n1, 32, tb_n1), e},
    };
    auto kernel = B2bConvKernel::Create(stages,
                                        ResidenceKind::kRegisterFile, kT4);
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    EXPECT_LT(kernel->EstimateUs(kT4), kernel->EstimateUnfusedUs(kT4));
  }
}

TEST(ChooseResidenceTest, PicksTheFasterValidStrategy) {
  auto stages = MakeStages();
  for (auto& s : stages) s.problem.m = 65536;
  ResidenceChoice choice = ChooseResidenceGemm(stages, kT4);
  EXPECT_TRUE(choice.rf_valid);
  EXPECT_TRUE(choice.smem_valid);
  const ResidenceKind expected = choice.rf_us <= choice.smem_us
                                     ? ResidenceKind::kRegisterFile
                                     : ResidenceKind::kSharedMemory;
  EXPECT_EQ(choice.best, expected);
}

TEST(ChooseResidenceTest, FallsBackToSmemWhenRfInfeasible) {
  auto stages = MakeStages();
  stages[0].config.warp = GemmShape(32, 32, 32);  // RF-incompatible
  stages[1].config.warp = GemmShape(32, 16, 32);  // keep warp counts equal
  ResidenceChoice choice = ChooseResidenceGemm(stages, kT4);
  EXPECT_FALSE(choice.rf_valid);
  EXPECT_TRUE(choice.smem_valid);
  EXPECT_EQ(choice.best, ResidenceKind::kSharedMemory);
}

}  // namespace
}  // namespace cutlite
}  // namespace bolt
