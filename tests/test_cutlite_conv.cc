// Tests for the cutlite implicit-GEMM Conv2D kernel.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cutlite/conv.h"
#include "ir/interpreter.h"

namespace bolt {
namespace cutlite {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

Tensor RandomNhwc(int64_t n, int64_t h, int64_t w, int64_t c,
                  uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, {n, h, w, c}, Layout::kNHWC));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  t.Quantize();
  return t;
}

Tensor RandomWeight(int64_t k, int64_t r, int64_t s, int64_t c,
                    uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, {k, r, s, c}, Layout::kAny));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  t.Quantize();
  return t;
}

KernelConfig SmallConfig() {
  KernelConfig c;
  c.threadblock = GemmShape(64, 16, 16);
  c.warp = GemmShape(32, 16, 16);
  c.instruction = GemmShape(16, 8, 8);
  c.stages = 2;
  c.align_a = c.align_b = c.align_c = 8;
  return c;
}

TEST(ConvProblemTest, ImplicitGemmCoordinates) {
  ConvProblem p;
  p.n = 32;
  p.h = p.w = 56;
  p.c = 64;
  p.k = 64;
  p.r = p.s = 3;
  p.pad_h = p.pad_w = 1;
  const GemmCoord g = p.AsGemm();
  EXPECT_EQ(g.m, 32 * 56 * 56);
  EXPECT_EQ(g.n, 64);
  EXPECT_EQ(g.k, 3 * 3 * 64);
}

TEST(ConvProblemTest, OutputDims) {
  ConvProblem p;
  p.h = 224;
  p.w = 224;
  p.r = p.s = 3;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  EXPECT_EQ(p.out_h(), 112);
  EXPECT_EQ(p.out_w(), 112);
}

TEST(ConvProblemTest, PointwiseDetection) {
  ConvProblem p;
  p.r = p.s = 1;
  EXPECT_TRUE(p.IsPointwise());
  p.stride_h = 2;
  EXPECT_FALSE(p.IsPointwise());
  p.stride_h = 1;
  p.pad_h = 1;
  EXPECT_FALSE(p.IsPointwise());
}

struct ConvCase {
  int64_t n, h, w, c, k, rs, stride, pad;
};

class ConvFunctionalTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvFunctionalTest, MatchesReference) {
  const ConvCase& cc = GetParam();
  ConvProblem p;
  p.n = cc.n;
  p.h = cc.h;
  p.w = cc.w;
  p.c = cc.c;
  p.k = cc.k;
  p.r = p.s = cc.rs;
  p.stride_h = p.stride_w = cc.stride;
  p.pad_h = p.pad_w = cc.pad;

  Tensor x = RandomNhwc(p.n, p.h, p.w, p.c, 11);
  Tensor w = RandomWeight(p.k, p.r, p.s, p.c, 12);

  KernelConfig cfg = SmallConfig();
  cfg.align_a = cfg.align_b = MaxAlignment(p.c);
  cfg.align_c = MaxAlignment(p.k);
  Conv2dKernel kernel(p, cfg, EpilogueSpec::Linear());
  auto out = kernel.Run(x, w);
  ASSERT_TRUE(out.ok());

  Conv2dAttrs attrs;
  attrs.stride_h = attrs.stride_w = cc.stride;
  attrs.pad_h = attrs.pad_w = cc.pad;
  Tensor ref = refop::Conv2d(x, w, attrs);
  EXPECT_LE(out.value().MaxAbsDiff(ref), 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvFunctionalTest,
    ::testing::Values(ConvCase{1, 8, 8, 8, 16, 3, 1, 1},
                      ConvCase{2, 7, 9, 4, 8, 3, 2, 1},
                      ConvCase{1, 6, 6, 16, 16, 1, 1, 0},   // pointwise
                      ConvCase{2, 12, 12, 3, 8, 5, 2, 2},
                      ConvCase{1, 5, 5, 2, 4, 3, 1, 0}));

TEST(ConvKernelTest, BiasAndActivationEpilogue) {
  ConvProblem p;
  p.n = 1;
  p.h = p.w = 6;
  p.c = 8;
  p.k = 8;
  p.r = p.s = 3;
  p.pad_h = p.pad_w = 1;
  Tensor x = RandomNhwc(1, 6, 6, 8, 21);
  Tensor w = RandomWeight(8, 3, 3, 8, 22);
  Tensor bias(TensorDesc(DType::kFloat16, {8}, Layout::kRowMajor));
  Rng rng(23);
  rng.FillNormal(bias.data(), 0.5f);
  bias.Quantize();

  Conv2dKernel kernel(p, SmallConfig(),
                      EpilogueSpec::WithActivation(
                          ActivationKind::kHardswish));
  auto out = kernel.Run(x, w, &bias);
  ASSERT_TRUE(out.ok());
  Conv2dAttrs attrs;
  attrs.pad_h = attrs.pad_w = 1;
  Tensor ref = refop::Activation(
      refop::BiasAdd(refop::Conv2d(x, w, attrs), bias),
      ActivationKind::kHardswish);
  EXPECT_LE(out.value().MaxAbsDiff(ref), 2e-2f);
}

TEST(ConvKernelTest, RejectsMisalignedChannels) {
  ConvProblem p;
  p.n = 1;
  p.h = p.w = 8;
  p.c = 46;  // not divisible by declared alignment 8
  p.k = 32;
  p.r = p.s = 3;
  Conv2dKernel kernel(p, SmallConfig(), EpilogueSpec::Linear());
  EXPECT_FALSE(kernel.CanImplement(kT4).ok());
}

TEST(ConvTimingTest, PaddedChannelsFasterThanUnaligned) {
  // The Table 3 mechanism: same conv, alignment 2 vs alignment 8.
  ConvProblem unaligned;
  unaligned.n = 32;
  unaligned.h = 20;
  unaligned.w = 26;
  unaligned.c = 46;
  unaligned.k = 32;
  unaligned.r = unaligned.s = 3;
  unaligned.pad_h = unaligned.pad_w = 1;
  ConvProblem padded = unaligned;
  padded.c = 48;

  KernelConfig cu = SmallConfig();
  cu.align_a = cu.align_b = 2;
  KernelConfig cp = SmallConfig();

  Conv2dKernel ku(unaligned, cu, EpilogueSpec::Linear());
  Conv2dKernel kp(padded, cp, EpilogueSpec::Linear());
  EXPECT_GT(ku.EstimateUs(kT4), 1.3 * kp.EstimateUs(kT4));
}

TEST(ConvTimingTest, StridedConvCheaperThanDense) {
  ConvProblem dense;
  dense.n = 32;
  dense.h = dense.w = 56;
  dense.c = dense.k = 64;
  dense.r = dense.s = 3;
  dense.pad_h = dense.pad_w = 1;
  ConvProblem strided = dense;
  strided.stride_h = strided.stride_w = 2;

  KernelConfig cfg = SmallConfig();
  Conv2dKernel kd(dense, cfg, EpilogueSpec::Linear());
  Conv2dKernel ks(strided, cfg, EpilogueSpec::Linear());
  EXPECT_GT(kd.EstimateUs(kT4), ks.EstimateUs(kT4));
}

TEST(ConvTimingTest, NameConvention) {
  Conv2dKernel k(ConvProblem{}, SmallConfig(), EpilogueSpec::Linear());
  EXPECT_EQ(k.Name(),
            "cutlite_tensorop_h1688conv2d_fprop_64x16_16x2_tn_align8");
}

}  // namespace
}  // namespace cutlite
}  // namespace bolt
