// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0
//
// Cutlite's functional GEMM delegation to the blocked CPU backend:
//
//  * the single-kernel path (split_k == 1, no column reduction) consults
//    the tuned-block registry — observable through the
//    cpu.tuned.lookup.{hit,miss} counters — and falls back to
//    BlockConfig::FromTileShape on a miss, bit-identically either way;
//  * split-K and column-reduction kernels keep the explicit tiled
//    traversal and never touch the registry (a poisoned-looking entry for
//    their exact problem shape must go unread).

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "cpukernels/backend.h"
#include "cpukernels/config.h"
#include "cpukernels/tuned.h"
#include "cutlite/gemm.h"
#include "ir/interpreter.h"

namespace bolt {
namespace cutlite {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, {rows, cols}, Layout::kRowMajor));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  t.Quantize();
  return t;
}

KernelConfig DefaultConfig() {
  KernelConfig c;
  c.threadblock = GemmShape(128, 128, 32);
  c.warp = GemmShape(64, 64, 32);
  c.instruction = GemmShape(16, 8, 8);
  c.stages = 2;
  return c;
}

int64_t Hits() {
  return metrics::Registry::Global()
      .GetCounter("cpu.tuned.lookup.hit")
      .value();
}
int64_t Misses() {
  return metrics::Registry::Global()
      .GetCounter("cpu.tuned.lookup.miss")
      .value();
}

class CutliteDelegationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (cpukernels::DefaultBackend() != cpukernels::Backend::kFastCpu) {
      GTEST_SKIP() << "delegation only engages on the fast CPU backend";
    }
    cpukernels::ClearTunedBlocks();
  }
  void TearDown() override { cpukernels::ClearTunedBlocks(); }
};

TEST_F(CutliteDelegationTest, ConsultsTunedRegistryAndFallsBackOnMiss) {
  const int64_t m = 32, n = 64, k = 128;
  GemmKernel kernel(GemmCoord(m, n, k), DefaultConfig(),
                    EpilogueSpec::WithActivation(ActivationKind::kRelu));
  ASSERT_TRUE(kernel.CanImplement(kT4).ok());

  Tensor a = RandomMatrix(m, k, 101);
  Tensor w = RandomMatrix(n, k, 102);
  Tensor bias = RandomMatrix(1, n, 103);
  bias = Tensor(TensorDesc(DType::kFloat16, {n}, Layout::kRowMajor),
                bias.data());
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  args.bias = &bias;

  // Empty registry: the delegation looks the shape up, misses, and uses
  // the threadblock-derived FromTileShape heuristic.
  const int64_t hits0 = Hits(), misses0 = Misses();
  auto miss_run = kernel.Run(args);
  ASSERT_TRUE(miss_run.ok());
  EXPECT_EQ(Hits(), hits0);
  EXPECT_EQ(Misses(), misses0 + 1);

  // Registered winner for this exact problem shape: the lookup hits.
  // FromTileShape(threadblock) would be 128x128/kc32, so a deliberately
  // different blocking proves the registry entry is the one consulted.
  auto tuned = cpukernels::BlockConfig::Make(8, 16, 8);
  ASSERT_TRUE(tuned.ok());
  ASSERT_TRUE(cpukernels::RegisterTunedBlock(cpukernels::TunedKind::kGemm,
                                             m, n, k, tuned.value()));
  auto hit_run = kernel.Run(args);
  ASSERT_TRUE(hit_run.ok());
  EXPECT_EQ(Hits(), hits0 + 1);
  EXPECT_EQ(Misses(), misses0 + 1);

  // Any blocking computes in the same ascending-k order: the heuristic
  // and tuned paths are bit-identical to each other.  Against the per-op
  // quantized refop chain the fused epilogue (FP32 until the final store)
  // is only FP16-close, same as the cutlite functional tests.
  EXPECT_EQ(miss_run.value().MaxAbsDiff(hit_run.value()), 0.0f);
  Tensor want = refop::Dense(a, w);
  want = refop::BiasAdd(want, bias);
  want = refop::Activation(want, ActivationKind::kRelu);
  EXPECT_LE(hit_run.value().MaxAbsDiff(want), 2e-2f);
}

TEST_F(CutliteDelegationTest, SplitKKeepsTheExplicitPathAndSkipsRegistry) {
  const int64_t m = 32, n = 64, k = 128;
  KernelConfig config = DefaultConfig();
  config.split_k = 2;
  GemmKernel kernel(GemmCoord(m, n, k), config, EpilogueSpec::Linear());
  ASSERT_TRUE(kernel.CanImplement(kT4).ok());

  // An entry for this exact shape that split-K must never read.
  auto tuned = cpukernels::BlockConfig::Make(8, 16, 8);
  ASSERT_TRUE(tuned.ok());
  ASSERT_TRUE(cpukernels::RegisterTunedBlock(cpukernels::TunedKind::kGemm,
                                             m, n, k, tuned.value()));

  Tensor a = RandomMatrix(m, k, 201);
  Tensor w = RandomMatrix(n, k, 202);
  GemmArguments args;
  args.a = &a;
  args.w = &w;

  const int64_t hits0 = Hits(), misses0 = Misses();
  auto run = kernel.Run(args);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(Hits(), hits0);
  EXPECT_EQ(Misses(), misses0);

  // Split-K reduces FP32 partials before the epilogue; on these shapes
  // that is still bit-identical to the single-pass reference because the
  // slice boundaries align with the reference's ascending-k order only in
  // exact arithmetic — so compare against the unsplit kernel, which IS
  // covered by the delegation contract, within the quantized grid.
  GemmKernel unsplit(GemmCoord(m, n, k), DefaultConfig(),
                     EpilogueSpec::Linear());
  auto base = unsplit.Run(args);
  ASSERT_TRUE(base.ok());
  EXPECT_LE(run.value().MaxAbsDiff(base.value()), 2e-2f);
}

TEST_F(CutliteDelegationTest, ColumnReductionSkipsRegistry) {
  const int64_t m = 32, n = 64, k = 128;
  EpilogueSpec epi = EpilogueSpec::Linear();
  epi.column_reduction = true;
  GemmKernel kernel(GemmCoord(m, n, k), DefaultConfig(), epi);
  ASSERT_TRUE(kernel.CanImplement(kT4).ok());

  auto tuned = cpukernels::BlockConfig::Make(8, 16, 8);
  ASSERT_TRUE(tuned.ok());
  ASSERT_TRUE(cpukernels::RegisterTunedBlock(cpukernels::TunedKind::kGemm,
                                             m, n, k, tuned.value()));

  Tensor a = RandomMatrix(m, k, 301);
  Tensor w = RandomMatrix(n, k, 302);
  Tensor column_sums;
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  args.column_sums = &column_sums;

  const int64_t hits0 = Hits(), misses0 = Misses();
  auto run = kernel.Run(args);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(Hits(), hits0);
  EXPECT_EQ(Misses(), misses0);
  EXPECT_EQ(column_sums.num_elements(), n);
}

}  // namespace
}  // namespace cutlite
}  // namespace bolt
