// Tests for the cutlite GEMM kernel: configuration validity, the CUTLASS
// naming convention, functional numerics against the reference, epilogue
// fusion semantics, and timing-model invariants.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cutlite/gemm.h"
#include "ir/interpreter.h"

namespace bolt {
namespace cutlite {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, {rows, cols}, Layout::kRowMajor));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  t.Quantize();
  return t;
}

KernelConfig DefaultConfig() {
  KernelConfig c;
  c.threadblock = GemmShape(128, 128, 32);
  c.warp = GemmShape(64, 64, 32);
  c.instruction = GemmShape(16, 8, 8);
  c.stages = 2;
  return c;
}

TEST(KernelConfigTest, ValidDefault) {
  EXPECT_TRUE(DefaultConfig().Validate(kT4).ok());
}

TEST(KernelConfigTest, RejectsNonDivisibleWarp) {
  KernelConfig c = DefaultConfig();
  c.warp = GemmShape(48, 64, 32);
  EXPECT_FALSE(c.Validate(kT4).ok());
}

TEST(KernelConfigTest, RejectsForeignInstructionShape) {
  KernelConfig c = DefaultConfig();
  c.instruction = GemmShape(16, 8, 16);  // sm80 shape on sm75
  EXPECT_EQ(c.Validate(kT4).code(), StatusCode::kUnsupported);
}

TEST(KernelConfigTest, RejectsSmemOverflow) {
  KernelConfig c = DefaultConfig();
  c.threadblock = GemmShape(256, 256, 64);
  c.warp = GemmShape(128, 128, 64);
  c.stages = 2;  // 2*(256+256)*64*2 = 128 KiB > 64 KiB
  EXPECT_EQ(c.Validate(kT4).code(), StatusCode::kResourceExhausted);
}

TEST(KernelConfigTest, NameFollowsCutlassConvention) {
  KernelConfig c = DefaultConfig();
  EXPECT_EQ(c.Name("gemm"),
            "cutlite_tensorop_h1688gemm_128x128_32x2_tn_align8");
  c.align_a = c.align_b = 2;
  EXPECT_EQ(c.Name("gemm"),
            "cutlite_tensorop_h1688gemm_128x128_32x2_tn_align2");
}

TEST(KernelConfigTest, ResourceArithmetic) {
  KernelConfig c = DefaultConfig();
  EXPECT_EQ(c.warps_per_cta(), 4);
  EXPECT_EQ(c.threads_per_cta(), 128);
  EXPECT_EQ(c.smem_bytes(), 2 * (128 * 32 + 128 * 32) * 2);
}

TEST(GemmKernelTest, RejectsMisalignedProblem) {
  // K=46 is not divisible by the declared alignment 8.
  GemmKernel k(GemmCoord(128, 128, 46), DefaultConfig(),
               EpilogueSpec::Linear());
  EXPECT_FALSE(k.CanImplement(kT4).ok());
}

// ---- Functional correctness over a sweep of configs ----------------------

struct GemmCase {
  int64_t m, n, k;
  int tb_m, tb_n, tb_k;
};

class GemmFunctionalTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmFunctionalTest, MatchesReferenceDense) {
  const GemmCase& p = GetParam();
  Tensor a = RandomMatrix(p.m, p.k, 1);
  Tensor w = RandomMatrix(p.n, p.k, 2);

  KernelConfig c = DefaultConfig();
  c.threadblock = GemmShape(p.tb_m, p.tb_n, p.tb_k);
  c.warp = GemmShape(p.tb_m / 2, p.tb_n / 2, p.tb_k);
  c.align_a = c.align_b = MaxAlignment(p.k);
  c.align_c = MaxAlignment(p.n);

  GemmKernel kernel(GemmCoord(p.m, p.n, p.k), c, EpilogueSpec::Linear());
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  auto out = kernel.Run(args);
  ASSERT_TRUE(out.ok());

  Tensor ref = refop::Dense(a, w);
  EXPECT_LE(out.value().MaxAbsDiff(ref), 1e-2f)
      << p.m << "x" << p.n << "x" << p.k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmFunctionalTest,
    ::testing::Values(GemmCase{32, 32, 32, 32, 32, 32},
                      GemmCase{64, 48, 40, 32, 16, 32},
                      GemmCase{100, 24, 16, 64, 16, 32},   // ragged M
                      GemmCase{128, 128, 64, 64, 64, 32},
                      GemmCase{17, 8, 8, 32, 16, 32},      // tiny ragged
                      GemmCase{256, 16, 128, 128, 16, 32}));

// ---- Epilogue semantics ---------------------------------------------------

class EpilogueActTest : public ::testing::TestWithParam<ActivationKind> {};

TEST_P(EpilogueActTest, BiasPlusActivationMatchesReferenceChain) {
  const ActivationKind act = GetParam();
  const GemmCoord p(48, 32, 16);
  Tensor a = RandomMatrix(p.m, p.k, 3);
  Tensor w = RandomMatrix(p.n, p.k, 4);
  Tensor bias(TensorDesc(DType::kFloat16, {p.n}, Layout::kRowMajor));
  Rng rng(5);
  rng.FillNormal(bias.data(), 0.5f);
  bias.Quantize();

  KernelConfig c = DefaultConfig();
  c.threadblock = GemmShape(64, 32, 16);
  c.warp = GemmShape(32, 16, 16);
  c.align_a = c.align_b = 8;
  c.align_c = 8;

  GemmKernel kernel(p, c, EpilogueSpec::WithActivation(act));
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  args.bias = &bias;
  auto out = kernel.Run(args);
  ASSERT_TRUE(out.ok());

  // Reference: unfused chain with an FP16 round after every op.
  Tensor ref = refop::Activation(refop::BiasAdd(refop::Dense(a, w), bias),
                                 act);
  // Fused epilogues keep FP32 precision until the final store, so allow a
  // couple of FP16 ulps of divergence from the per-op-quantized chain.
  EXPECT_LE(out.value().MaxAbsDiff(ref), 2e-2f) << ActivationName(act);
}

INSTANTIATE_TEST_SUITE_P(
    AllActivations, EpilogueActTest,
    ::testing::Values(ActivationKind::kRelu, ActivationKind::kGelu,
                      ActivationKind::kHardswish,
                      ActivationKind::kSoftplus));

TEST(EpilogueTest, ResidualAdd) {
  const GemmCoord p(32, 16, 8);
  Tensor a = RandomMatrix(p.m, p.k, 6);
  Tensor w = RandomMatrix(p.n, p.k, 7);
  Tensor residual = RandomMatrix(p.m, p.n, 8);

  KernelConfig c = DefaultConfig();
  c.threadblock = GemmShape(32, 16, 8);
  c.warp = GemmShape(16, 8, 8);
  c.align_a = c.align_b = 8;
  c.align_c = 8;

  EpilogueSpec e;
  e.has_residual = true;
  e.beta = 1.0f;
  e.activations.push_back(ActivationKind::kRelu);
  GemmKernel kernel(p, c, e);
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  args.c = &residual;
  auto out = kernel.Run(args);
  ASSERT_TRUE(out.ok());
  Tensor ref = refop::Activation(refop::Add(refop::Dense(a, w), residual),
                                 ActivationKind::kRelu);
  EXPECT_LE(out.value().MaxAbsDiff(ref), 2e-2f);
}

TEST(EpilogueTest, FunctorTemplatesMatchRuntimeDispatch) {
  LinearCombinationRelu functor;
  functor.alpha = 1.0f;
  EpilogueSpec spec = EpilogueSpec::WithActivation(ActivationKind::kRelu,
                                                   /*bias=*/false);
  spec.output_dtype = DType::kFloat32;  // avoid quantization in compare
  for (float acc : {-2.0f, 0.0f, 3.5f}) {
    EXPECT_EQ(functor(acc, 0.0f, 0.0f),
              ApplyEpilogueElement(spec, acc, 0.0f, 0.0f));
  }
}

TEST(EpilogueTest, NamesEncodeActivations) {
  EXPECT_EQ(EpilogueSpec::Linear().FunctorName(),
            "cutlite::epilogue::thread::LinearCombination");
  EXPECT_EQ(
      EpilogueSpec::WithActivation(ActivationKind::kRelu).FunctorName(),
      "cutlite::epilogue::thread::LinearCombinationRelu");
}

// ---- Timing-model invariants ---------------------------------------------

TEST(GemmTimingTest, BigSquareIsComputeBound) {
  GemmKernel k(GemmCoord(4096, 4096, 4096), DefaultConfig(),
               EpilogueSpec::Linear());
  KernelTiming t = k.Estimate(kT4);
  EXPECT_GT(t.compute_us, t.memory_us);
  // Near peak: > 50 TFLOPS effective.
  const double tflops = k.problem().flops() / t.total_us / 1e6;
  EXPECT_GT(tflops, 50.0);
  EXPECT_LT(tflops, 65.0);  // cannot exceed hardware peak
}

TEST(GemmTimingTest, TallSkinnyIsMemoryBound) {
  KernelConfig c = DefaultConfig();
  c.threadblock = GemmShape(128, 64, 32);
  c.warp = GemmShape(64, 32, 32);
  GemmKernel k(GemmCoord(16384, 64, 256), c, EpilogueSpec::Linear());
  KernelTiming t = k.Estimate(kT4);
  EXPECT_GT(t.memory_us, t.compute_us);
}

TEST(GemmTimingTest, Alignment8BeatsAlignment2) {
  KernelConfig aligned = DefaultConfig();
  KernelConfig misaligned = DefaultConfig();
  misaligned.align_a = misaligned.align_b = 2;
  // K=4094 is divisible by 2 but not 8.
  GemmKernel ka(GemmCoord(4096, 4096, 4096), aligned,
                EpilogueSpec::Linear());
  GemmKernel km(GemmCoord(4096, 4096, 4094), misaligned,
                EpilogueSpec::Linear());
  EXPECT_LT(ka.EstimateUs(kT4) * 1.3, km.EstimateUs(kT4));
}

TEST(GemmTimingTest, MonotonicInK) {
  double prev = 0.0;
  for (int64_t k = 256; k <= 4096; k *= 2) {
    GemmKernel kernel(GemmCoord(1024, 1024, k), DefaultConfig(),
                      EpilogueSpec::Linear());
    const double us = kernel.EstimateUs(kT4);
    EXPECT_GT(us, prev);
    prev = us;
  }
}

TEST(GemmTimingTest, ExpensiveEpilogueCostsMore) {
  GemmKernel plain(GemmCoord(1280, 3072, 768), DefaultConfig(),
                   EpilogueSpec::Linear());
  GemmKernel softplus(
      GemmCoord(1280, 3072, 768), DefaultConfig(),
      EpilogueSpec::WithActivation(ActivationKind::kSoftplus));
  EXPECT_GT(softplus.EstimateUs(kT4), plain.EstimateUs(kT4));
  // But the epilogue is a small fraction of the kernel (it is fused).
  EXPECT_LT(softplus.EstimateUs(kT4), 1.25 * plain.EstimateUs(kT4));
}

TEST(VendorPeakTest, NearHardwarePeakOnLargeGemm) {
  VendorPeakResult r = VendorPeakGemm(kT4, GemmCoord(4096, 4096, 4096));
  EXPECT_GT(r.tflops, 50.0);
  EXPECT_TRUE(r.config.Validate(kT4).ok());
}

TEST(VendorPeakTest, AtLeastAsFastAsAnyFixedConfig) {
  const GemmCoord p(1280, 768, 3072);
  VendorPeakResult best = VendorPeakGemm(kT4, p);
  GemmKernel fixed(p, DefaultConfig(), EpilogueSpec::Linear());
  EXPECT_LE(best.us, fixed.EstimateUs(kT4) + 1e-9);
}

}  // namespace
}  // namespace cutlite
}  // namespace bolt
