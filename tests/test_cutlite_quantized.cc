// Tests for mixed-precision support: math-mode descriptors, the INT8
// quantized GEMM (functional exactness of int32 accumulation,
// requantization), and the mixed-precision timing projections.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cutlite/quantized.h"

namespace bolt {
namespace cutlite {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();
const DeviceSpec kA100 = DeviceSpec::A100();

KernelConfig Int8Config() {
  KernelConfig c;
  c.threadblock = GemmShape(64, 64, 32);
  c.warp = GemmShape(32, 32, 32);
  c.instruction = GemmShape(8, 8, 16);  // Turing INT8 MMA
  c.align_a = c.align_b = c.align_c = 8;
  return c;
}

TEST(MathModeTest, WidthsAndAlignments) {
  EXPECT_EQ(MathModeBits(MathMode::kF16), 16);
  EXPECT_EQ(MathModeBits(MathMode::kS8), 8);
  EXPECT_EQ(MathModeBits(MathMode::kS4), 4);
  EXPECT_EQ(MathModeMaxAlignment(MathMode::kF16), 8);
  EXPECT_EQ(MathModeMaxAlignment(MathMode::kS8), 16);
  EXPECT_EQ(MathModeMaxAlignment(MathMode::kS4), 32);
}

TEST(MathModeTest, ArchitectureSupportMatrix) {
  // Turing: FP16 + INT8/INT4, no BF16/TF32.
  EXPECT_TRUE(MathModeSupported(MathMode::kF16, kT4));
  EXPECT_TRUE(MathModeSupported(MathMode::kS8, kT4));
  EXPECT_TRUE(MathModeSupported(MathMode::kS4, kT4));
  EXPECT_FALSE(MathModeSupported(MathMode::kBF16, kT4));
  EXPECT_FALSE(MathModeSupported(MathMode::kTF32, kT4));
  // Ampere: everything.
  for (MathMode m : {MathMode::kF16, MathMode::kBF16, MathMode::kTF32,
                     MathMode::kS8, MathMode::kS4}) {
    EXPECT_TRUE(MathModeSupported(m, kA100)) << MathModeName(m);
  }
}

TEST(MathModeTest, PeakLadder) {
  // INT8 = 2x FP16, INT4 = 4x FP16 on both architectures.
  for (const DeviceSpec* spec : {&kT4, &kA100}) {
    const double f16 = MathModePeak(MathMode::kF16, *spec);
    EXPECT_DOUBLE_EQ(MathModePeak(MathMode::kS8, *spec), 2 * f16);
    EXPECT_DOUBLE_EQ(MathModePeak(MathMode::kS4, *spec), 4 * f16);
  }
  // TF32 = FP16/2 on Ampere.
  EXPECT_DOUBLE_EQ(MathModePeak(MathMode::kTF32, kA100),
                   MathModePeak(MathMode::kF16, kA100) / 2);
}

TEST(QuantizationTest, SymmetricScaleMapsMaxTo127) {
  Tensor t(TensorDesc(DType::kFloat32, {4}));
  t.data() = {0.5f, -2.54f, 1.0f, 0.0f};
  const float scale = ChooseSymmetricScale(t);
  EXPECT_FLOAT_EQ(scale, 2.54f / 127.0f);
  EXPECT_FLOAT_EQ(ChooseSymmetricScale(Tensor(TensorDesc(
                      DType::kFloat32, {3}))),
                  1.0f);  // all-zero tensor: neutral scale
}

TEST(QuantizedGemmTest, ExactForSmallIntegers) {
  // Inputs that are exact multiples of the scale: INT8 GEMM is exact.
  const int64_t m = 8, n = 8, k = 16;
  Tensor a(TensorDesc(DType::kFloat32, {m, k}, Layout::kRowMajor));
  Tensor w(TensorDesc(DType::kFloat32, {n, k}, Layout::kRowMajor));
  Rng rng(3);
  for (auto* t : {&a, &w}) {
    for (float& v : t->data()) {
      v = static_cast<float>(rng.Uniform(-5, 5));
    }
  }
  EpilogueSpec e = EpilogueSpec::Linear();
  e.output_dtype = DType::kFloat32;
  QuantizedGemmKernel kernel(GemmCoord(m, n, k), Int8Config(), e,
                             /*scale_a=*/1.0f, /*scale_w=*/1.0f);
  ASSERT_TRUE(kernel.CanImplement(kT4).ok());
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  auto out = kernel.Run(args);
  ASSERT_TRUE(out.ok());

  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float expect = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        expect += a.at(i * k + kk) * w.at(j * k + kk);
      }
      EXPECT_FLOAT_EQ(out.value().at(i * n + j), expect);
    }
  }
}

TEST(QuantizedGemmTest, ApproximatesFloatGemmWithCalibratedScales) {
  const int64_t m = 32, n = 16, k = 64;
  Tensor a(TensorDesc(DType::kFloat32, {m, k}, Layout::kRowMajor));
  Tensor w(TensorDesc(DType::kFloat32, {n, k}, Layout::kRowMajor));
  Rng rng(4);
  rng.FillNormal(a.data(), 0.5f);
  rng.FillNormal(w.data(), 0.5f);
  EpilogueSpec e = EpilogueSpec::Linear();
  e.output_dtype = DType::kFloat32;
  QuantizedGemmKernel kernel(GemmCoord(m, n, k), Int8Config(), e,
                             ChooseSymmetricScale(a),
                             ChooseSymmetricScale(w));
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  auto out = kernel.Run(args);
  ASSERT_TRUE(out.ok());

  double max_rel = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float expect = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        expect += a.at(i * k + kk) * w.at(j * k + kk);
      }
      const double err = std::abs(out.value().at(i * n + j) - expect);
      max_rel = std::max(max_rel, err / (std::abs(expect) + 1.0));
    }
  }
  EXPECT_LT(max_rel, 0.08);  // ~2 decimal digits from 8-bit mantissas
}

TEST(QuantizedGemmTest, RejectsBadScalesAndAlignment) {
  EpilogueSpec e = EpilogueSpec::Linear();
  QuantizedGemmKernel bad_scale(GemmCoord(8, 8, 16), Int8Config(), e,
                                -1.0f, 1.0f);
  EXPECT_FALSE(bad_scale.CanImplement(kT4).ok());
  QuantizedGemmKernel bad_k(GemmCoord(8, 8, 24), Int8Config(), e, 1.0f,
                            1.0f);
  EXPECT_FALSE(bad_k.CanImplement(kT4).ok());
}

TEST(QuantizedGemmTest, Int8RoughlyTwiceAsFastAsFp16WhenComputeBound) {
  const GemmCoord p(4096, 4096, 4096);
  KernelConfig f16;
  f16.threadblock = GemmShape(128, 128, 32);
  f16.warp = GemmShape(64, 64, 32);
  f16.instruction = GemmShape(16, 8, 8);
  GemmKernel fp16(p, f16, EpilogueSpec::Linear());
  QuantizedGemmKernel int8(p, Int8Config(), EpilogueSpec::Linear(), 0.01f,
                           0.01f);
  const double ratio = fp16.EstimateUs(kT4) / int8.EstimateUs(kT4);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.6);
}

TEST(QuantizedGemmTest, NameConvention) {
  QuantizedGemmKernel k(GemmCoord(8, 8, 16), Int8Config(),
                        EpilogueSpec::Linear(), 1.0f, 1.0f);
  EXPECT_EQ(k.Name(), "cutlite_tensorop_s8i8816gemm_64x64_32x2_tn_align16");
}

TEST(MixedTimingTest, Bf16MatchesFp16OnAmpere) {
  const GemmCoord p(4096, 4096, 4096);
  KernelConfig c;
  c.threadblock = GemmShape(128, 128, 32);
  c.warp = GemmShape(64, 64, 32);
  c.instruction = GemmShape(16, 8, 16);
  const auto f16 =
      EstimateMixedGemm(kA100, MathMode::kF16, p, c, EpilogueSpec::Linear());
  const auto bf16 = EstimateMixedGemm(kA100, MathMode::kBF16, p, c,
                                      EpilogueSpec::Linear());
  EXPECT_NEAR(f16.total_us, bf16.total_us, 1e-9);
  const auto tf32 = EstimateMixedGemm(kA100, MathMode::kTF32, p, c,
                                      EpilogueSpec::Linear());
  EXPECT_GT(tf32.total_us, 1.5 * f16.total_us);  // half the peak
}

}  // namespace
}  // namespace cutlite
}  // namespace bolt
