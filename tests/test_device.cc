// Tests for the device model: occupancy, timing primitives, and the
// architectural invariants the optimizations in the paper rely on.

#include <gtest/gtest.h>

#include "device/occupancy.h"
#include "device/spec.h"
#include "device/timing.h"

namespace bolt {
namespace {

TEST(DeviceSpecTest, T4Preset) {
  const DeviceSpec t4 = DeviceSpec::TeslaT4();
  EXPECT_EQ(t4.arch, "sm75");
  EXPECT_EQ(t4.sm_count, 40);
  EXPECT_DOUBLE_EQ(t4.tensor_tflops_fp16, 65.0);
  // The paper's key ratio: tensor cores are ~4x the half2 CUDA-core peak.
  EXPECT_GT(t4.tensor_tflops_fp16 / t4.simt_tflops_fp16, 3.5);
}

TEST(DeviceSpecTest, A100Preset) {
  const DeviceSpec a = DeviceSpec::A100();
  EXPECT_EQ(a.arch, "sm80");
  EXPECT_GT(a.tensor_tflops_fp16, DeviceSpec::TeslaT4().tensor_tflops_fp16);
  EXPECT_GT(a.smem_per_sm, DeviceSpec::TeslaT4().smem_per_sm);
}

TEST(OccupancyTest, LimitedByThreads) {
  const DeviceSpec t4 = DeviceSpec::TeslaT4();
  CtaResources res{512, 1024, 32};
  EXPECT_EQ(CtasPerSm(t4, res), 2);  // 1024 threads/SM / 512
}

TEST(OccupancyTest, LimitedBySharedMemory) {
  const DeviceSpec t4 = DeviceSpec::TeslaT4();
  CtaResources res{128, 40 * 1024, 32};
  EXPECT_EQ(CtasPerSm(t4, res), 1);
}

TEST(OccupancyTest, LimitedByRegisters) {
  const DeviceSpec t4 = DeviceSpec::TeslaT4();
  CtaResources res{256, 1024, 128};  // 32768 regs per CTA
  EXPECT_EQ(CtasPerSm(t4, res), 2);
}

TEST(OccupancyTest, ZeroWhenDoesNotFit) {
  const DeviceSpec t4 = DeviceSpec::TeslaT4();
  EXPECT_EQ(CtasPerSm(t4, CtaResources{128, 100 * 1024, 32}), 0);
  EXPECT_EQ(CtasPerSm(t4, CtaResources{2048, 1024, 32}), 0);
  EXPECT_EQ(CtasPerSm(t4, CtaResources{128, 1024, 300}), 0);
}

TEST(OccupancyTest, LatencyHidingMonotonic) {
  const DeviceSpec t4 = DeviceSpec::TeslaT4();
  double prev = 0.0;
  for (int warps = 1; warps <= 10; ++warps) {
    const double f = LatencyHidingFactor(t4, warps);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_EQ(LatencyHidingFactor(t4, 8), 1.0);
  EXPECT_EQ(LatencyHidingFactor(t4, 0), 0.0);
}

TEST(OccupancyTest, WaveQuantizationProperties) {
  // Exact multiples have no penalty.
  EXPECT_DOUBLE_EQ(WaveQuantization(160, 80), 1.0);
  // One extra CTA forces a whole extra wave.
  EXPECT_NEAR(WaveQuantization(161, 80), 3.0 / (161.0 / 80.0), 1e-9);
  // Single partial wave: no penalty (handled by utilization terms).
  EXPECT_DOUBLE_EQ(WaveQuantization(40, 80), 1.0);
  // Penalty shrinks as wave count grows.
  EXPECT_GT(WaveQuantization(81, 80), WaveQuantization(801, 80));
}

TEST(AlignmentTest, EfficiencyMonotonic) {
  EXPECT_GT(AlignmentEfficiency(8), AlignmentEfficiency(4));
  EXPECT_GT(AlignmentEfficiency(4), AlignmentEfficiency(2));
  EXPECT_GT(AlignmentEfficiency(2), AlignmentEfficiency(1));
  EXPECT_DOUBLE_EQ(AlignmentEfficiency(8), 1.0);
  EXPECT_GT(ComputeAlignmentFactor(8), ComputeAlignmentFactor(2));
}

TEST(AlignmentTest, MaxAlignment) {
  EXPECT_EQ(MaxAlignment(768), 8);
  EXPECT_EQ(MaxAlignment(4), 4);
  EXPECT_EQ(MaxAlignment(46), 2);
  EXPECT_EQ(MaxAlignment(3), 1);
}

TEST(TimingTest, ComputeTimeLinearInFlops) {
  const double t1 = ComputeTimeUs(1e9, 65e12, 1.0);
  const double t2 = ComputeTimeUs(2e9, 65e12, 1.0);
  EXPECT_NEAR(t2, 2 * t1, 1e-9);
}

TEST(TimingTest, MemoryTimeInverseInEfficiency) {
  const double fast = MemoryTimeUs(1e6, 320, 1.0);
  const double slow = MemoryTimeUs(1e6, 320, 0.5);
  EXPECT_NEAR(slow, 2 * fast, 1e-9);
}

TEST(TimingTest, GemmDramBytesAtLeastCompulsory) {
  GemmTraffic t;
  t.m = 4096;
  t.n = 4096;
  t.k = 4096;
  const double compulsory =
      (2.0 * 4096 * 4096 + 4096.0 * 4096) * t.bytes_per_element;
  EXPECT_GE(GemmDramBytes(t), compulsory);
}

TEST(TimingTest, BiggerTilesReduceTraffic) {
  GemmTraffic small;
  small.m = small.n = small.k = 4096;
  small.tile_m = small.tile_n = 64;
  GemmTraffic big = small;
  big.tile_m = big.tile_n = 256;
  EXPECT_GT(GemmDramBytes(small), GemmDramBytes(big));
}

TEST(TimingTest, L2ResidentStreamsFaster) {
  const DeviceSpec t4 = DeviceSpec::TeslaT4();
  EXPECT_GT(EffectiveReadGbps(t4, 1e6), t4.dram_gbps);   // fits in L2
  EXPECT_EQ(EffectiveReadGbps(t4, 1e9), t4.dram_gbps);   // does not
}

TEST(TuningClockTest, AccumulatesAndSplits) {
  TuningClock clock;
  clock.ChargeCompile(10.0);
  clock.ChargeMeasure(5.0);
  clock.Charge(1.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 16.0);
  EXPECT_DOUBLE_EQ(clock.compile_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(clock.measure_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(clock.minutes(), 16.0 / 60.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

}  // namespace
}  // namespace bolt
