// Tests for the Bolt engine: the full BYOC pipeline, functional
// equivalence with the reference interpreter, and per-optimization
// latency ablations.

#include <gtest/gtest.h>

#include "bolt/engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "ir/interpreter.h"

namespace bolt {
namespace {

Tensor RandomWeight(std::vector<int64_t> shape, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, std::move(shape)));
  Rng rng(seed);
  int64_t fan = 1;
  for (size_t i = 1; i < t.shape().size(); ++i) fan *= t.shape()[i];
  rng.FillNormal(t.data(), 1.0f / std::sqrt(static_cast<float>(fan)));
  t.Quantize();
  return t;
}

/// Small CNN exercising every optimization: NCHW input (layout pass),
/// conv+bias+act chains (epilogue fusion), 3x3 -> 1x1 (persistent
/// fusion), dense head. 46 input channels on the second conv would be
/// unusual; keep channels aligned here and test padding separately.
Graph BuildSmallCnn() {
  GraphBuilder b(DType::kFloat16, Layout::kNCHW);
  NodeId x = b.Input("data", {2, 3, 12, 12}, Layout::kNCHW);
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, b.Constant("w0", RandomWeight({16, 3, 3, 3}, 1)),
                      a, "conv0");
  y = b.BiasAdd(y, b.Constant("b0", RandomWeight({16}, 2)));
  y = b.Activation(y, ActivationKind::kRelu);
  y = b.Conv2d(y, b.Constant("w1", RandomWeight({16, 1, 1, 16}, 3)),
               Conv2dAttrs{}, "conv1");
  y = b.BiasAdd(y, b.Constant("b1", RandomWeight({16}, 4)));
  y = b.Activation(y, ActivationKind::kHardswish);
  y = b.GlobalAvgPool(y);
  y = b.Flatten(y);
  y = b.Dense(y, b.Constant("wf", RandomWeight({10, 16}, 5)), "fc");
  y = b.BiasAdd(y, b.Constant("bf", RandomWeight({10}, 6)));
  y = b.Softmax(y);
  b.MarkOutput(y);
  auto g = b.Build();
  BOLT_CHECK(g.ok());
  return std::move(g).value();
}

Tensor RandomInput(uint64_t seed = 77) {
  Tensor t(TensorDesc(DType::kFloat16, {2, 3, 12, 12}, Layout::kNCHW));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.7f);
  t.Quantize();
  return t;
}

TEST(EngineTest, CompilesAndRunsMatchingInterpreter) {
  Graph g = BuildSmallCnn();
  auto engine = Engine::Compile(g, CompileOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::map<std::string, Tensor> inputs{{"data", RandomInput()}};
  auto out = engine->Run(inputs);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // Reference on the layout-normalized primitive graph.
  auto ref = Interpreter(LayoutTransformPass(g)).Run(inputs);
  ASSERT_TRUE(ref.ok());
  // Fused epilogues keep FP32 until the final store; allow a few FP16
  // ulps relative to the per-op-quantized reference.
  EXPECT_LE(out.value()[0].MaxAbsDiff(ref.value()[0]), 5e-3f);
}

TEST(EngineTest, AppliesAllPasses) {
  auto engine = Engine::Compile(BuildSmallCnn(), CompileOptions{});
  ASSERT_TRUE(engine.ok());
  const PassStats& stats = engine->tuning_report().pass_stats;
  EXPECT_GE(stats.epilogues_fused, 4);
  EXPECT_EQ(stats.persistent_fused, 1);  // conv0+conv1 pair
  EXPECT_GE(stats.layout_transforms_inserted, 1);
}

TEST(EngineTest, EpilogueFusionReducesLatency) {
  Graph g = BuildSmallCnn();
  CompileOptions with;
  CompileOptions without;
  without.enable_epilogue_fusion = false;
  without.enable_persistent_fusion = false;  // isolate the effect
  CompileOptions with_epi = without;
  with_epi.enable_epilogue_fusion = true;
  auto fast = Engine::Compile(g, with_epi);
  auto slow = Engine::Compile(g, without);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_LT(fast->EstimatedLatencyUs(), slow->EstimatedLatencyUs());
}

TEST(EngineTest, PersistentFusionReducesLatencyAndLaunches) {
  Graph g = BuildSmallCnn();
  CompileOptions base;
  base.enable_persistent_fusion = false;
  auto unfused = Engine::Compile(g, base);
  auto fused = Engine::Compile(g, CompileOptions{});
  ASSERT_TRUE(unfused.ok());
  ASSERT_TRUE(fused.ok());
  EXPECT_LE(fused->EstimatedLatencyUs(), unfused->EstimatedLatencyUs());
  EXPECT_LT(fused->module().num_device_launches(),
            unfused->module().num_device_launches());
}

TEST(EngineTest, DisablingFusionStillMatchesInterpreter) {
  Graph g = BuildSmallCnn();
  CompileOptions opts;
  opts.enable_epilogue_fusion = false;
  opts.enable_persistent_fusion = false;
  opts.enable_padding = false;
  auto engine = Engine::Compile(g, opts);
  ASSERT_TRUE(engine.ok());
  std::map<std::string, Tensor> inputs{{"data", RandomInput(123)}};
  auto out = engine->Run(inputs);
  ASSERT_TRUE(out.ok());
  auto ref = Interpreter(LayoutTransformPass(g)).Run(inputs);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(out.value()[0].MaxAbsDiff(ref.value()[0]), 5e-3f);
}

TEST(EngineTest, GeneratesCutlassConventionSources) {
  auto engine = Engine::Compile(BuildSmallCnn(), CompileOptions{});
  ASSERT_TRUE(engine.ok());
  const std::string source = engine->module().FullSource();
  EXPECT_TRUE(Contains(source, "cutlite::gemm::device::Gemm"));
  EXPECT_TRUE(Contains(source, "B2bImplicitGemmConvolution"));
  EXPECT_TRUE(Contains(source, "Auto-generated by Bolt"));
  // Every device launch besides padding references an emitted kernel.
  for (const auto& launch : engine->module().launches()) {
    if (launch.kind == codegen::LaunchKind::kGemm ||
        launch.kind == codegen::LaunchKind::kConv) {
      EXPECT_TRUE(engine->module().sources().count(launch.kernel_name))
          << launch.kernel_name;
    }
  }
}

TEST(EngineTest, FoldedLayoutTransformHasNoLaunch) {
  auto engine = Engine::Compile(BuildSmallCnn(), CompileOptions{});
  ASSERT_TRUE(engine.ok());
  bool found_folded = false;
  for (const auto& launch : engine->module().launches()) {
    if (launch.kernel_name == "folded_layout_transform") {
      found_folded = true;
    }
  }
  EXPECT_TRUE(found_folded);
}

TEST(EngineTest, TuningReportAccountsProfilerWork) {
  auto engine = Engine::Compile(BuildSmallCnn(), CompileOptions{});
  ASSERT_TRUE(engine.ok());
  const TuningReport& r = engine->tuning_report();
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.workloads_profiled, 0);
  EXPECT_GT(r.candidates_tried, 0);
  // Minutes, not hours, for a tiny model.
  EXPECT_LT(r.seconds, 10 * 60.0);
}

TEST(EngineTest, MissingInputRejected) {
  auto engine = Engine::Compile(BuildSmallCnn(), CompileOptions{});
  ASSERT_TRUE(engine.ok());
  auto out = engine->Run({});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, PaddingTriggersOnUnalignedProductionConv) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {32, 20, 26, 46});
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 2;
  NodeId y = b.Conv2d(
      x, b.Constant("w", RandomWeight({32, 5, 5, 46}, 11)), a);
  y = b.BiasAdd(y, b.Constant("bias", RandomWeight({32}, 12)));
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  auto padded = Engine::Compile(*g, CompileOptions{});
  CompileOptions no_pad;
  no_pad.enable_padding = false;
  auto unpadded = Engine::Compile(*g, no_pad);
  ASSERT_TRUE(padded.ok());
  ASSERT_TRUE(unpadded.ok());
  EXPECT_EQ(padded->tuning_report().pass_stats.tensors_padded, 1);
  EXPECT_LT(padded->EstimatedLatencyUs(), unpadded->EstimatedLatencyUs());

  // Functional equivalence with padding enabled.
  Tensor input(TensorDesc(DType::kFloat16, {32, 20, 26, 46},
                          Layout::kNHWC));
  Rng rng(13);
  rng.FillNormal(input.data(), 0.5f);
  input.Quantize();
  std::map<std::string, Tensor> inputs{{"x", input}};
  auto out = padded->Run(inputs);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto ref = Interpreter(*g).Run(inputs);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(out.value()[0].MaxAbsDiff(ref.value()[0]), 5e-3f);
}

TEST(EngineTest, MultiOutputGraph) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 8, 8, 8});
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y1 = b.Conv2d(x, b.Constant("w1", RandomWeight({8, 3, 3, 8}, 21)),
                       a);
  NodeId y2 = b.Activation(x, ActivationKind::kGelu);
  b.MarkOutput(y1);
  b.MarkOutput(y2);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto engine = Engine::Compile(*g, CompileOptions{});
  ASSERT_TRUE(engine.ok());

  Tensor input(TensorDesc(DType::kFloat16, {1, 8, 8, 8}, Layout::kNHWC));
  Rng rng(22);
  rng.FillNormal(input.data(), 0.5f);
  input.Quantize();
  std::map<std::string, Tensor> inputs{{"x", input}};
  auto out = engine->Run(inputs);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 2u);
  auto ref = Interpreter(*g).Run(inputs);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(out.value()[0].MaxAbsDiff(ref.value()[0]), 5e-3f);
  EXPECT_LE(out.value()[1].MaxAbsDiff(ref.value()[1]), 5e-3f);
}

TEST(EngineTest, TimingOnlyGraphRejectsFunctionalRun) {
  // Desc-only weights compile fine (timing) but cannot execute.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 8, 8, 8});
  NodeId w = b.ConstantDesc("w", TensorDesc(DType::kFloat16, {8, 3, 3, 8}));
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, w, a);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto engine = Engine::Compile(*g, CompileOptions{});
  ASSERT_TRUE(engine.ok());
  EXPECT_GT(engine->EstimatedLatencyUs(), 0.0);

  Tensor input(TensorDesc(DType::kFloat16, {1, 8, 8, 8}, Layout::kNHWC));
  auto out = engine->Run({{"x", input}});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, LaunchRecordsReferenceOptimizedNodes) {
  auto engine = Engine::Compile(BuildSmallCnn(), CompileOptions{});
  ASSERT_TRUE(engine.ok());
  const Graph& g = engine->optimized_graph();
  for (const auto& launch : engine->module().launches()) {
    ASSERT_GE(launch.node, 0);
    ASSERT_LT(launch.node, g.num_nodes());
    EXPECT_GE(launch.estimated_us, 0.0);
  }
  // Total latency equals the sum of launch records.
  double sum = 0.0;
  for (const auto& l : engine->module().launches()) sum += l.estimated_us;
  EXPECT_NEAR(sum, engine->EstimatedLatencyUs(), 1e-9);
}

}  // namespace
}  // namespace bolt
