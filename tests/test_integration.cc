// Cross-module integration tests: the paper's headline claims verified
// end-to-end on small instances — Bolt beats the Ansor baseline on FP16
// workloads while tuning orders of magnitude faster, fusion preserves
// numerics, and the full stack composes.

#include <gtest/gtest.h>

#include "ansor/search.h"
#include "bolt/engine.h"
#include "common/rng.h"
#include "ir/interpreter.h"
#include "models/workloads.h"
#include "models/zoo.h"
#include "profiler/profiler.h"

namespace bolt {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

TEST(Integration, BoltBeatsAnsorOnFp16Gemms) {
  // Fig. 8a's claim, end to end through both tuners.
  Profiler prof(kT4);
  TuningClock clock;
  ansor::TuningOptions topts;
  topts.trials = 256;
  for (const auto& w : workloads::Fig1Gemms()) {
    auto bolt_r = prof.ProfileGemm(w.coord, cutlite::EpilogueSpec::Linear());
    ASSERT_TRUE(bolt_r.ok());
    ansor::SearchTask task;
    task.kind = ansor::TaskKind::kGemm;
    task.gemm = w.coord;
    task.name = w.name;
    auto ansor_r = ansor::TuneTask(task, kT4, topts, clock);
    const double speedup = ansor_r.best_us / bolt_r.value().us;
    EXPECT_GT(speedup, 2.0) << w.name;   // decisive win
    EXPECT_LT(speedup, 12.0) << w.name;  // but physically plausible
  }
}

TEST(Integration, AnsorReachesOnlyFractionOfVendorPeak) {
  // Fig. 1: Ansor < ~20-25% of cuBLAS(-oracle) performance on FP16 GEMM.
  TuningClock clock;
  ansor::TuningOptions topts;
  topts.trials = 256;
  for (const auto& w : workloads::Fig1Gemms()) {
    auto vendor = cutlite::VendorPeakGemm(kT4, w.coord);
    ansor::SearchTask task;
    task.kind = ansor::TaskKind::kGemm;
    task.gemm = w.coord;
    auto r = ansor::TuneTask(task, kT4, topts, clock);
    EXPECT_LT(vendor.us / r.best_us, 0.30) << w.name;
  }
}

TEST(Integration, BoltMatchesVendorPeakClosely) {
  // Bolt's search over the same native template space should land within
  // a few percent of the exhaustive vendor oracle.
  Profiler prof(kT4);
  for (const auto& w : workloads::Fig1Gemms()) {
    auto vendor = cutlite::VendorPeakGemm(kT4, w.coord);
    auto bolt_r = prof.ProfileGemm(w.coord, cutlite::EpilogueSpec::Linear());
    ASSERT_TRUE(bolt_r.ok());
    EXPECT_LE(bolt_r.value().us, vendor.us * 1.10) << w.name;
  }
}

TEST(Integration, TuningTimeGapIsOrdersOfMagnitude) {
  // Fig. 10b: Bolt tunes in minutes, Ansor in hours.
  models::ModelOptions opts;
  opts.batch = 32;
  auto g = models::BuildResNet(18, opts);
  ASSERT_TRUE(g.ok());

  auto engine = Engine::Compile(*g, CompileOptions{});
  ASSERT_TRUE(engine.ok());
  const double bolt_minutes = engine->tuning_report().seconds / 60.0;
  EXPECT_LT(bolt_minutes, 20.0);  // the paper's headline budget

  // Ansor cost extrapolated from a small trial count (cost is linear in
  // trials: compile+measure per trial).
  ansor::TuningOptions topts;
  topts.trials = 16;
  ansor::AnsorModelResult ansor_r = ansor::TuneModel(*g, kT4, topts);
  const double ansor_hours_at_900 =
      ansor_r.tuning_seconds / 3600.0 * (900.0 / 16.0);
  EXPECT_GT(ansor_hours_at_900, 2.0);
  EXPECT_GT(ansor_hours_at_900 * 60.0, 10.0 * bolt_minutes);
}

TEST(Integration, EndToEndSpeedupOnSmallRepVgg) {
  // Miniature Fig. 10a: Bolt-compiled RepVGG vs Ansor-tuned, same graph.
  // Batch 32 / 64x64 keeps the workloads large enough that tensor cores
  // matter; at toy sizes every kernel is launch-bound and the two tuners
  // tie (the paper's small-problem caveat).
  models::RepVggOptions opts;
  opts.batch = 32;
  opts.image_size = 64;
  opts.num_classes = 10;
  auto g = models::BuildRepVgg(models::RepVggVariant::kA0, opts);
  ASSERT_TRUE(g.ok());

  auto engine = Engine::Compile(*g, CompileOptions{});
  ASSERT_TRUE(engine.ok());
  ansor::TuningOptions topts;
  topts.trials = 128;
  ansor::AnsorModelResult ansor_r = ansor::TuneModel(*g, kT4, topts);

  const double speedup = ansor_r.latency_us / engine->EstimatedLatencyUs();
  EXPECT_GT(speedup, 1.3);
}

TEST(Integration, FullPipelinePreservesNumericsOnRepVggBlockPair) {
  // 3x3 + 1x1 RepVGG-Aug pattern, materialized, run through every pass.
  GraphBuilder b(DType::kFloat16, Layout::kNCHW);
  Rng rng(5);
  auto weight = [&](std::vector<int64_t> s, const char* name) {
    Tensor t(TensorDesc(DType::kFloat16, std::move(s)));
    int64_t fan = 1;
    for (size_t i = 1; i < t.shape().size(); ++i) fan *= t.shape()[i];
    rng.FillNormal(t.data(), 1.0f / std::sqrt(static_cast<float>(fan)));
    t.Quantize();
    return b.Constant(name, std::move(t));
  };
  NodeId x = b.Input("data", {1, 8, 14, 14}, Layout::kNCHW);
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  a.stride_h = a.stride_w = 2;
  NodeId y = b.Conv2d(x, weight({16, 3, 3, 8}, "w3"), a);
  y = b.BiasAdd(y, weight({16}, "b3"));
  y = b.Activation(y, ActivationKind::kHardswish);
  y = b.Conv2d(y, weight({16, 1, 1, 16}, "w1"), Conv2dAttrs{});
  y = b.BiasAdd(y, weight({16}, "b1"));
  y = b.Activation(y, ActivationKind::kHardswish);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  auto engine = Engine::Compile(*g, CompileOptions{});
  ASSERT_TRUE(engine.ok());
  // The pair must actually fuse into a persistent kernel.
  EXPECT_EQ(engine->tuning_report().pass_stats.persistent_fused, 1);

  Tensor input(TensorDesc(DType::kFloat16, {1, 8, 14, 14}, Layout::kNCHW));
  rng.FillNormal(input.data(), 0.5f);
  input.Quantize();
  std::map<std::string, Tensor> inputs{{"data", input}};
  auto fused_out = engine->Run(inputs);
  ASSERT_TRUE(fused_out.ok());
  auto ref = Interpreter(LayoutTransformPass(*g)).Run(inputs);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(fused_out.value()[0].MaxAbsDiff(ref.value()[0]), 5e-3f);
}

TEST(Integration, AblationLadderIsMonotone) {
  // Each optimization must not hurt: none <= +epilogue <= +persistent.
  models::RepVggOptions opts;
  opts.batch = 8;
  opts.image_size = 32;
  opts.num_classes = 10;
  opts.augment_1x1 = true;  // creates persistent-fusion opportunities
  auto g = models::BuildRepVgg(models::RepVggVariant::kA0, opts);
  ASSERT_TRUE(g.ok());

  CompileOptions none;
  none.enable_epilogue_fusion = false;
  none.enable_persistent_fusion = false;
  CompileOptions epi = none;
  epi.enable_epilogue_fusion = true;
  CompileOptions full;

  auto e_none = Engine::Compile(*g, none);
  auto e_epi = Engine::Compile(*g, epi);
  auto e_full = Engine::Compile(*g, full);
  ASSERT_TRUE(e_none.ok());
  ASSERT_TRUE(e_epi.ok());
  ASSERT_TRUE(e_full.ok());
  EXPECT_LT(e_epi->EstimatedLatencyUs(), e_none->EstimatedLatencyUs());
  EXPECT_LE(e_full->EstimatedLatencyUs(), e_epi->EstimatedLatencyUs());
  EXPECT_GT(e_full->tuning_report().pass_stats.persistent_fused, 0);
}

}  // namespace
}  // namespace bolt
