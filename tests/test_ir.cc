// Tests for the graph IR: builder shape inference, validation, reference
// interpreter numerics, layout transforms, and BYOC partitioning.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "ir/graph.h"
#include "ir/interpreter.h"
#include "ir/partition.h"

namespace bolt {
namespace {

Tensor RandomTensor(TensorDesc desc, uint64_t seed = 1) {
  Tensor t(std::move(desc));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.5f);
  t.Quantize();
  return t;
}

TEST(GraphBuilderTest, ConvShapeInferenceNHWC) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {2, 8, 8, 3});
  NodeId w = b.Constant(
      "w", Tensor(TensorDesc(DType::kFloat16, {16, 3, 3, 3})));
  Conv2dAttrs a;
  a.stride_h = a.stride_w = 2;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, w, a);
  const TensorDesc& d = b.graph().node(y).out_desc;
  EXPECT_EQ(d.shape, (std::vector<int64_t>{2, 4, 4, 16}));
  EXPECT_EQ(d.layout, Layout::kNHWC);
}

TEST(GraphBuilderTest, ConvShapeInferenceNCHW) {
  GraphBuilder b(DType::kFloat16, Layout::kNCHW);
  NodeId x = b.Input("x", {1, 3, 9, 9});
  NodeId w = b.Constant(
      "w", Tensor(TensorDesc(DType::kFloat16, {8, 3, 3, 3})));
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, w, a);
  EXPECT_EQ(b.graph().node(y).out_desc.shape,
            (std::vector<int64_t>{1, 8, 9, 9}));
}

TEST(GraphBuilderTest, DenseAndFlatten) {
  GraphBuilder b;
  NodeId x = b.Input("x", {4, 2, 2, 8});
  NodeId f = b.Flatten(x);
  EXPECT_EQ(b.graph().node(f).out_desc.shape,
            (std::vector<int64_t>{4, 32}));
  NodeId w = b.Constant(
      "w", Tensor(TensorDesc(DType::kFloat16, {10, 32})));
  NodeId y = b.Dense(f, w);
  EXPECT_EQ(b.graph().node(y).out_desc.shape,
            (std::vector<int64_t>{4, 10}));
}

TEST(GraphBuilderTest, BuildValidatesTopologicalOrder) {
  GraphBuilder b;
  NodeId x = b.Input("x", {1, 4});
  b.MarkOutput(x);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->Validate().ok());
}

TEST(GraphTest, ConsumersAndCounts) {
  GraphBuilder b;
  NodeId x = b.Input("x", {1, 4, 4, 8});
  NodeId r1 = b.Activation(x, ActivationKind::kRelu);
  NodeId r2 = b.Activation(x, ActivationKind::kGelu);
  b.MarkOutput(r1);
  b.MarkOutput(r2);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Consumers(x).size(), 2u);
  EXPECT_EQ(g->NumConsumers(x), 2);
  EXPECT_EQ(g->NumConsumers(r1), 0);
}

TEST(InterpreterTest, Conv2dMatchesHandComputed) {
  // 1x1 input "image", 1x1 kernel: conv == scalar product over channels.
  GraphBuilder b(DType::kFloat32, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 1, 1, 3});
  Tensor w(TensorDesc(DType::kFloat32, {2, 1, 1, 3}));
  w.data() = {1, 2, 3, /*oc1:*/ 0.5f, -1, 2};
  NodeId wc = b.Constant("w", std::move(w));
  NodeId y = b.Conv2d(x, wc, Conv2dAttrs{});
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Tensor input(TensorDesc(DType::kFloat32, {1, 1, 1, 3}, Layout::kNHWC));
  input.data() = {1, 10, 100};
  auto out = Interpreter(*g).Run({{"x", input}});
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out.value()[0].at(0), 1 + 20 + 300);
  EXPECT_FLOAT_EQ(out.value()[0].at(1), 0.5f - 10 + 200);
}

TEST(InterpreterTest, ConvPaddingAndStride) {
  // 3x3 all-ones kernel over a 3x3 all-ones image with pad 1 stride 2:
  // corners of the padded conv see 4 ones.
  GraphBuilder b(DType::kFloat32, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 3, 3, 1});
  Tensor w(TensorDesc(DType::kFloat32, {1, 3, 3, 1}));
  std::fill(w.data().begin(), w.data().end(), 1.0f);
  NodeId wc = b.Constant("w", std::move(w));
  Conv2dAttrs a;
  a.stride_h = a.stride_w = 2;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, wc, a);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Tensor input(TensorDesc(DType::kFloat32, {1, 3, 3, 1}, Layout::kNHWC));
  std::fill(input.data().begin(), input.data().end(), 1.0f);
  auto out = Interpreter(*g).Run({{"x", input}});
  ASSERT_TRUE(out.ok());
  // Output 2x2: each output at stride-2 corners covers a 2x2 patch.
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out.value()[0].at(i), 4.0f);
}

TEST(InterpreterTest, BiasActivationResidual) {
  GraphBuilder b(DType::kFloat32, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 1, 1, 2});
  Tensor bias(TensorDesc(DType::kFloat32, {2}));
  bias.data() = {1.0f, -5.0f};
  NodeId bc = b.Constant("b", std::move(bias));
  NodeId y = b.BiasAdd(x, bc);
  y = b.Activation(y, ActivationKind::kRelu);
  y = b.Add(y, x);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Tensor input(TensorDesc(DType::kFloat32, {1, 1, 1, 2}, Layout::kNHWC));
  input.data() = {2.0f, 3.0f};
  auto out = Interpreter(*g).Run({{"x", input}});
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out.value()[0].at(0), 3.0f + 2.0f);   // relu(3)+2
  EXPECT_FLOAT_EQ(out.value()[0].at(1), 0.0f + 3.0f);   // relu(-2)+3
}

TEST(InterpreterTest, MaxPoolAndGap) {
  GraphBuilder b(DType::kFloat32, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 2, 2, 1});
  NodeId p = b.MaxPool2d(x, 2, 2);
  NodeId gap = b.GlobalAvgPool(x);
  b.MarkOutput(p);
  b.MarkOutput(gap);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Tensor input(TensorDesc(DType::kFloat32, {1, 2, 2, 1}, Layout::kNHWC));
  input.data() = {1, 2, 3, 4};
  auto out = Interpreter(*g).Run({{"x", input}});
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out.value()[0].at(0), 4.0f);
  EXPECT_FLOAT_EQ(out.value()[1].at(0), 2.5f);
}

TEST(InterpreterTest, SoftmaxRowsSumToOne) {
  GraphBuilder b(DType::kFloat32, Layout::kNHWC);
  NodeId x = b.Input("x", {3, 7}, Layout::kRowMajor);
  NodeId y = b.Softmax(x);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Tensor input = RandomTensor(TensorDesc(DType::kFloat32, {3, 7}), 5);
  auto out = Interpreter(*g).Run({{"x", input}});
  ASSERT_TRUE(out.ok());
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 7; ++c) sum += out.value()[0].at(r * 7 + c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(LayoutTransformTest, RoundTripIsIdentity) {
  Tensor t = RandomTensor(
      TensorDesc(DType::kFloat16, {2, 3, 4, 5}, Layout::kNCHW), 3);
  Tensor nhwc = refop::LayoutTransform(t, Layout::kNHWC);
  EXPECT_EQ(nhwc.shape(), (std::vector<int64_t>{2, 4, 5, 3}));
  Tensor back = refop::LayoutTransform(nhwc, Layout::kNCHW);
  EXPECT_EQ(back.MaxAbsDiff(t), 0.0f);
}

TEST(PadChannelsTest, PreservesDataAndZeroFills) {
  Tensor t = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 2, 2, 3}, Layout::kNHWC), 9);
  Tensor p = refop::PadChannels(t, 8);
  EXPECT_EQ(p.shape(), (std::vector<int64_t>{1, 2, 2, 8}));
  for (int64_t hw = 0; hw < 4; ++hw) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(p.at(hw * 8 + c), t.at(hw * 3 + c));
    }
    for (int64_t c = 3; c < 8; ++c) EXPECT_EQ(p.at(hw * 8 + c), 0.0f);
  }
}

TEST(InterpreterTest, RejectsCompositeOps) {
  GraphBuilder b;
  NodeId x = b.Input("x", {1, 2, 2, 8});
  b.MarkOutput(x);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Graph graph = std::move(g).value();
  Node composite;
  composite.kind = OpKind::kBoltGemm;
  composite.name = "fake";
  composite.inputs = {0};
  graph.AddNode(std::move(composite));
  Tensor input(TensorDesc(DType::kFloat16, {1, 2, 2, 8}, Layout::kNHWC));
  auto out = Interpreter(graph).Run({{"x", input}});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
}

TEST(PartitionTest, GroupsMaximalSupportedRegions) {
  GraphBuilder b;
  NodeId x = b.Input("x", {4, 8, 8, 16});
  NodeId w = b.Constant(
      "w", Tensor(TensorDesc(DType::kFloat16, {16, 3, 3, 16})));
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId c1 = b.Conv2d(x, w, a);
  NodeId r1 = b.Activation(c1, ActivationKind::kRelu);
  NodeId p = b.MaxPool2d(r1, 2, 2);  // unsupported by Bolt backend
  NodeId w2 = b.Constant(
      "w2", Tensor(TensorDesc(DType::kFloat16, {16, 3, 3, 16})));
  NodeId c2 = b.Conv2d(p, w2, a);
  b.MarkOutput(c2);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  PartitionResult pr = PartitionGraph(*g, DefaultBoltSupport);
  // conv1+relu form one offloaded region, pool a host region, conv2 a
  // second offloaded region.
  EXPECT_EQ(pr.num_offloaded(), 2);
  EXPECT_EQ(pr.region_of[c1], pr.region_of[r1]);
  EXPECT_NE(pr.region_of[r1], pr.region_of[p]);
  EXPECT_NE(pr.region_of[p], pr.region_of[c2]);
}

TEST(PartitionTest, DiamondAcrossUnsupportedNodeDoesNotMergeRegions) {
  // Regression: diamond `supported -> unsupported -> supported` where the
  // final node also consumes the first directly.  Greedily merging y into
  // c1's region would make that region both a producer and a consumer of
  // the pool's host region — an inter-region cycle with no valid region
  // execution order.  The reachability guard must open a fresh region.
  //
  //      c1 (conv, supported)
  //     /  \
  //    |    p (maxpool k=1 s=1, unsupported, shape-preserving)
  //     \  /
  //      y = add (supported)
  GraphBuilder b;
  NodeId x = b.Input("x", {1, 8, 8, 16});
  NodeId w = b.Constant(
      "w", Tensor(TensorDesc(DType::kFloat16, {16, 3, 3, 16})));
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId c1 = b.Conv2d(x, w, a);
  NodeId p = b.MaxPool2d(c1, 1, 1);
  NodeId y = b.Add(c1, p);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  PartitionResult pr = PartitionGraph(*g, DefaultBoltSupport);
  ASSERT_GE(pr.region_of[c1], 0);
  ASSERT_GE(pr.region_of[p], 0);
  ASSERT_GE(pr.region_of[y], 0);
  EXPECT_NE(pr.region_of[p], pr.region_of[c1]);
  // The buggy partitioner put y back into c1's region; it must not.
  EXPECT_NE(pr.region_of[y], pr.region_of[c1]);
  EXPECT_NE(pr.region_of[y], pr.region_of[p]);

  // The region graph must be acyclic: with regions emitted in topological
  // order of their first node, every inter-region edge must point from a
  // lower region id to a higher one.
  for (const Node& n : g->nodes()) {
    const int rn = pr.region_of[n.id];
    if (rn < 0) continue;
    for (NodeId in : n.inputs) {
      const int ri = pr.region_of[in];
      if (ri < 0 || ri == rn) continue;
      EXPECT_LT(ri, rn) << "region back-edge " << ri << " -> " << rn;
    }
  }
}

TEST(PartitionTest, InputsAndConstantsUnassigned) {
  GraphBuilder b;
  NodeId x = b.Input("x", {1, 4});
  NodeId w = b.Constant("w", Tensor(TensorDesc(DType::kFloat16, {4, 4})));
  NodeId y = b.Dense(x, w);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  PartitionResult pr = PartitionGraph(*g, DefaultBoltSupport);
  EXPECT_EQ(pr.region_of[x], -1);
  EXPECT_EQ(pr.region_of[w], -1);
  EXPECT_GE(pr.region_of[y], 0);
}

TEST(LayoutEquivalenceTest, ConvAgreesAcrossLayouts) {
  // Property: conv(NCHW x) == NHWC->conv->NCHW for random shapes.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = rng.Uniform(1, 2), c = rng.Uniform(1, 5);
    const int64_t hw = rng.Uniform(4, 9), oc = rng.Uniform(1, 6);
    const int64_t k = rng.UniformFloat() < 0.5 ? 1 : 3;
    Conv2dAttrs a;
    a.stride_h = a.stride_w = rng.UniformFloat() < 0.3 ? 2 : 1;
    a.pad_h = a.pad_w = k == 3 ? 1 : 0;

    Tensor x_nchw = RandomTensor(
        TensorDesc(DType::kFloat32, {n, c, hw, hw}, Layout::kNCHW),
        100 + trial);
    Tensor w = RandomTensor(TensorDesc(DType::kFloat32, {oc, k, k, c}),
                            200 + trial);

    Tensor direct = refop::Conv2d(x_nchw, w, a);
    Tensor via_nhwc = refop::LayoutTransform(
        refop::Conv2d(refop::LayoutTransform(x_nchw, Layout::kNHWC), w, a),
        Layout::kNCHW);
    EXPECT_LE(direct.MaxAbsDiff(via_nhwc), 1e-4f) << "trial " << trial;
  }
}

TEST(LayoutEquivalenceTest, PoolingAgreesAcrossLayouts) {
  Rng rng(88);
  Tensor x = RandomTensor(
      TensorDesc(DType::kFloat32, {2, 3, 8, 8}, Layout::kNCHW), 5);
  Tensor direct = refop::MaxPool2d(x, 2, 2);
  Tensor via = refop::LayoutTransform(
      refop::MaxPool2d(refop::LayoutTransform(x, Layout::kNHWC), 2, 2),
      Layout::kNCHW);
  EXPECT_EQ(direct.MaxAbsDiff(via), 0.0f);

  Tensor g1 = refop::GlobalAvgPool(x);
  Tensor g2 = refop::GlobalAvgPool(refop::LayoutTransform(x, Layout::kNHWC));
  // GAP output orders channels identically in both layouts (N,C,1,1 vs
  // N,1,1,C are the same flat data).
  EXPECT_LE(g1.MaxAbsDiff(g2), 1e-6f);
}

TEST(GraphTest, ToStringListsNodesAndOutputs) {
  GraphBuilder b;
  NodeId x = b.Input("x", {1, 4});
  NodeId w = b.Constant("w", Tensor(TensorDesc(DType::kFloat16, {4, 4})));
  NodeId y = b.Dense(x, w, "fc");
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const std::string text = g->ToString();
  EXPECT_TRUE(Contains(text, "dense"));
  EXPECT_TRUE(Contains(text, "# fc"));
  EXPECT_TRUE(Contains(text, "outputs: [2]"));
}

TEST(AttrMapTest, TypesAndDefaults) {
  AttrMap m;
  m.SetInt("i", 7);
  m.SetFloat("f", 2.5);
  m.SetStr("s", "hello");
  m.SetInts("v", {1, 2, 3});
  EXPECT_EQ(m.GetInt("i"), 7);
  EXPECT_EQ(m.GetInt("missing", -1), -1);
  EXPECT_DOUBLE_EQ(m.GetFloat("f"), 2.5);
  EXPECT_EQ(m.GetStr("s"), "hello");
  EXPECT_EQ(m.GetInts("v").size(), 3u);
  EXPECT_TRUE(m.Has("i"));
  EXPECT_FALSE(m.Has("x"));
}

}  // namespace
}  // namespace bolt
