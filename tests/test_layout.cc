// Layout-matrix differential suite for the ALT-style joint layout search
// (docs/LAYOUT.md): layout is a tunable graph axis, so every layer that
// touches it is pinned here against the reference oracle under the
// two-tier numeric contract (docs/CPU_BACKEND.md).
//
//  * the execution matrix: randomized Conv/Dense/B2B subgraphs crossed
//    with {NCHW, NHWC, blocked NCHWc} and {scalar, SIMD} tiers, funneled
//    through the shared diff harness (CheckDiff / ToleranceFor);
//  * the planner: AssignRegionLayouts under synthetic cost models with
//    hand-checkable optima, and under the production CPU model;
//  * the rewrite: LayoutSearchPass must preserve semantics bit-exactly at
//    the reference tier, insert transforms only at disagreeing region
//    boundaries, and elide them entirely when adjacent partitions agree;
//  * the cost model: transform cost monotone in tensor bytes and zero on
//    agreement; conv layout affinity ordered NCHW > NHWC > NCHWc for
//    every shape, which is what makes the planner's choices stable.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "bolt/hostcost.h"
#include "bolt/passes.h"
#include "common/rng.h"
#include "common/strings.h"
#include "cpukernels/cpuinfo.h"
#include "ir/interpreter.h"
#include "ir/partition.h"
#include "testing/diff_harness.h"

namespace bolt {
namespace {

using cpukernels::CpuIsa;
using difftest::CheckDiff;
using difftest::RandomTensor;
using difftest::ToleranceFor;

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

/// The planner's transform cost includes the kernel launch, so on small
/// test tensors a deep chain is needed before a layout change amortizes.
/// Zeroing the launch keeps the pin graphs small without changing the
/// bandwidth-ratio structure the tests assert.
DeviceSpec LaunchFreeSpec() {
  DeviceSpec s = kT4;
  s.kernel_launch_us = 0.0;
  return s;
}

Conv2dAttrs Attrs(int64_t stride, int64_t pad) {
  Conv2dAttrs a;
  a.stride_h = a.stride_w = stride;
  a.pad_h = a.pad_w = pad;
  return a;
}

/// Logical {n, c, h, w} to the stored shape for `layout` (NCHWc keeps the
/// logical NCHW shape; only the physical order is blocked).
std::vector<int64_t> ActShape(Layout layout, int64_t n, int64_t c, int64_t h,
                              int64_t w) {
  return layout == Layout::kNHWC ? std::vector<int64_t>{n, h, w, c}
                                 : std::vector<int64_t>{n, c, h, w};
}

int CountTransforms(const Graph& g) {
  int k = 0;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kLayoutTransform) ++k;
  }
  return k;
}

/// Runs `g` on the fast backend under `isa` and diffs against the oracle
/// with the tier picked from the *resolved* ISA — the exact production
/// degradation path on hosts without the requested tier.
void ExpectMatchesOracle(const Graph& g,
                         const std::map<std::string, Tensor>& in,
                         CpuIsa isa, const std::string& op) {
  RefExecutor oracle(g);
  auto want = oracle.Run(in);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  InterpreterOptions o;
  o.backend = cpukernels::Backend::kFastCpu;
  o.block.isa = isa;
  o.use_tuned_blocks = false;
  Interpreter interp(g, o);
  auto got = interp.Run(in);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().size(), want.value().size());
  const CpuIsa resolved = cpukernels::ResolveCpuIsa(isa);
  for (size_t i = 0; i < want.value().size(); ++i) {
    const difftest::Tolerance tol =
        ToleranceFor(resolved, want.value()[i].desc().dtype);
    EXPECT_TRUE(CheckDiff(op, got.value()[i], want.value()[i], tol))
        << "output " << i << " isa=" << cpukernels::CpuIsaName(isa);
  }
}

// ---------------------------------------------------------------------------
// Execution matrix: layouts x tiers against the oracle
// ---------------------------------------------------------------------------

TEST(LayoutMatrixDiffTest, ConvSubgraphFullMatrix) {
  // Deterministic corner of the matrix: one conv->bias->gelu subgraph per
  // (layout, tier) cell, block-aligned channels so NCHWc is eligible.
  for (Layout layout : {Layout::kNCHW, Layout::kNHWC, Layout::kNCHWc}) {
    for (CpuIsa isa : {CpuIsa::kScalar, CpuIsa::kAuto}) {
      SCOPED_TRACE(StrCat(LayoutName(layout), " isa=",
                          cpukernels::CpuIsaName(isa)));
      GraphBuilder b(DType::kFloat16, layout);
      const std::vector<int64_t> xs = ActShape(layout, 1, 8, 9, 9);
      NodeId x = b.Input("x", xs);
      NodeId w = b.Constant(
          "w", RandomTensor(TensorDesc(DType::kFloat16, {16, 3, 3, 8}), 11));
      NodeId bias = b.Constant(
          "b", RandomTensor(TensorDesc(DType::kFloat16, {16}), 12));
      NodeId y = b.Activation(b.BiasAdd(b.Conv2d(x, w, Attrs(1, 1)), bias),
                              ActivationKind::kGelu);
      b.MarkOutput(y);
      std::map<std::string, Tensor> in;
      in["x"] = RandomTensor(TensorDesc(DType::kFloat16, xs, layout), 13);
      ExpectMatchesOracle(b.Build().value(), in, isa, "layout_conv");
    }
  }
}

TEST(LayoutMatrixDiffTest, B2bConvAcrossEveryLayoutBoundary) {
  // conv -> relu -> explicit LayoutTransform -> conv for every ordered
  // (from, to) layout pair: the transform node sits between two anchors,
  // exactly where LayoutSearchPass plants it.
  const Layout layouts[] = {Layout::kNCHW, Layout::kNHWC, Layout::kNCHWc};
  int seed = 100;
  for (Layout from : layouts) {
    for (Layout to : layouts) {
      SCOPED_TRACE(StrCat(LayoutName(from), "->", LayoutName(to)));
      GraphBuilder b(DType::kFloat16, from);
      const std::vector<int64_t> xs = ActShape(from, 1, 8, 8, 8);
      NodeId x = b.Input("x", xs);
      NodeId w1 = b.Constant(
          "w1",
          RandomTensor(TensorDesc(DType::kFloat16, {8, 3, 3, 8}), ++seed));
      NodeId y = b.Activation(b.Conv2d(x, w1, Attrs(1, 1)),
                              ActivationKind::kRelu);
      if (from != to) y = b.LayoutTransform(y, to);
      NodeId w2 = b.Constant(
          "w2",
          RandomTensor(TensorDesc(DType::kFloat16, {16, 1, 1, 8}), ++seed));
      y = b.Conv2d(y, w2, Conv2dAttrs{});
      b.MarkOutput(y);
      std::map<std::string, Tensor> in;
      in["x"] = RandomTensor(TensorDesc(DType::kFloat16, xs, from), ++seed);
      const Graph g = b.Build().value();
      for (CpuIsa isa : {CpuIsa::kScalar, CpuIsa::kAuto}) {
        ExpectMatchesOracle(g, in, isa, "layout_b2b");
      }
    }
  }
}

TEST(LayoutMatrixDiffTest, RandomizedSubgraphsUnderSearchedLayouts) {
  // The tentpole pin: randomized Conv/Dense/B2B subgraphs are planned by
  // LayoutSearchPass (under the launch-free spec so small graphs still
  // change layout), then the *rewritten* graph must match the oracle run
  // of the *original* graph — semantics survive whatever the planner and
  // rewriter chose, under both tiers.
  Rng rng(4242);
  const DeviceSpec spec = LaunchFreeSpec();
  for (int trial = 0; trial < 24; ++trial) {
    const bool aligned = trial % 2 == 0;
    const int64_t h = rng.Uniform(5, 9);
    const int64_t c =
        aligned ? kNCHWcBlock * rng.Uniform(1, 2) : rng.Uniform(2, 7);
    const int64_t oc =
        aligned ? kNCHWcBlock * rng.Uniform(1, 2) : rng.Uniform(2, 9);
    const Layout layout = difftest::RandomConvLayout(rng, c, oc);
    const int64_t kernel = 1 + 2 * rng.Uniform(0, 1);
    const int64_t pad = rng.Uniform(0, kernel - 1);
    const int depth = 1 + rng.Uniform(0, 2);
    SCOPED_TRACE(StrCat("trial=", trial, " h=", h, " c=", c, " oc=", oc,
                        " k=", kernel, " depth=", depth, " ",
                        LayoutName(layout)));

    GraphBuilder b(DType::kFloat16, layout);
    const std::vector<int64_t> xs = ActShape(layout, 1, c, h, h);
    NodeId x = b.Input("x", xs);
    NodeId w0 = b.Constant(
        "w0", RandomTensor(TensorDesc(DType::kFloat16, {oc, kernel, kernel, c}),
                           9000 + trial));
    NodeId y = b.Conv2d(x, w0, Attrs(1, pad));
    if (trial % 3 == 0) {
      y = b.BiasAdd(y, b.Constant("bias", RandomTensor(TensorDesc(
                                              DType::kFloat16, {oc}),
                                                       9100 + trial)));
    }
    y = b.Activation(y, difftest::kActivations[trial %
                                               difftest::kActivations.size()]);
    NodeId branch = y;
    for (int d = 1; d < depth; ++d) {
      // Same-channel 1x1 convs keep shapes residual-compatible.
      NodeId wd = b.Constant(
          StrCat("w", d),
          RandomTensor(TensorDesc(DType::kFloat16, {oc, 1, 1, oc}),
                       9200 + 10 * trial + d));
      y = b.Activation(b.Conv2d(y, wd, Conv2dAttrs{}),
                       ActivationKind::kRelu);
    }
    if (depth > 1 && trial % 2 == 1) y = b.Add(y, branch);
    b.MarkOutput(y);
    Graph original = b.Build().value();

    PassStats stats;
    Graph searched = LayoutSearchPass(original, spec, &stats);
    std::map<std::string, Tensor> in;
    in["x"] =
        RandomTensor(TensorDesc(DType::kFloat16, xs, layout), 9300 + trial);
    for (CpuIsa isa : {CpuIsa::kScalar, CpuIsa::kAuto}) {
      // The oracle runs the original graph: the rewrite must be invisible.
      RefExecutor oracle(original);
      auto want = oracle.Run(in);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      InterpreterOptions o;
      o.backend = cpukernels::Backend::kFastCpu;
      o.block.isa = isa;
      o.use_tuned_blocks = false;
      auto got = Interpreter(searched, o).Run(in);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value().size(), want.value().size());
      const difftest::Tolerance tol = ToleranceFor(
          cpukernels::ResolveCpuIsa(isa), DType::kFloat16);
      for (size_t i = 0; i < want.value().size(); ++i) {
        EXPECT_TRUE(
            CheckDiff("layout_search", got.value()[i], want.value()[i], tol))
            << "output " << i << " isa=" << cpukernels::CpuIsaName(isa);
      }
    }
  }
}

TEST(LayoutMatrixDiffTest, DenseChainsPassThroughUnchanged) {
  // Rank-2 graphs have no layout freedom: the pass must be a structural
  // no-op and the dense chain still matches the oracle on both tiers.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {4, 24});
  NodeId w1 = b.Constant(
      "w1", RandomTensor(TensorDesc(DType::kFloat16, {16, 24}), 31));
  NodeId y = b.Activation(b.Dense(x, w1), ActivationKind::kRelu);
  NodeId w2 = b.Constant(
      "w2", RandomTensor(TensorDesc(DType::kFloat16, {8, 16}), 32));
  y = b.Softmax(b.Dense(y, w2));
  b.MarkOutput(y);
  Graph g = b.Build().value();

  PassStats stats;
  Graph searched = LayoutSearchPass(g, kT4, &stats);
  EXPECT_EQ(stats.layout_transforms_inserted, 0);
  EXPECT_EQ(searched.num_nodes(), g.num_nodes());
  EXPECT_EQ(CountTransforms(searched), 0);
  std::map<std::string, Tensor> in;
  in["x"] = RandomTensor(TensorDesc(DType::kFloat16, {4, 24}), 33);
  for (CpuIsa isa : {CpuIsa::kScalar, CpuIsa::kAuto}) {
    ExpectMatchesOracle(searched, in, isa, "layout_dense");
  }
}

// ---------------------------------------------------------------------------
// LayoutSearchPass: adoption, boundary transforms, and elision pins
// ---------------------------------------------------------------------------

/// A chain of `depth` same-shape convs (3x3 pad-1, relu between) with
/// NCHW input; `c` channels throughout.  Weights are materialized so the
/// graph executes.
Graph DeepConvChain(int depth, int64_t c, int64_t h) {
  GraphBuilder b(DType::kFloat16, Layout::kNCHW);
  NodeId y = b.Input("data", {1, c, h, h}, Layout::kNCHW);
  for (int d = 0; d < depth; ++d) {
    NodeId w = b.Constant(
        StrCat("w", d),
        RandomTensor(TensorDesc(DType::kFloat16, {c, 3, 3, c}, Layout::kAny),
                     40 + d));
    y = b.Activation(b.Conv2d(y, w, Attrs(1, 1), StrCat("conv", d)),
                     ActivationKind::kRelu);
  }
  b.MarkOutput(y);
  auto g = b.Build();
  BOLT_CHECK(g.ok());
  return std::move(g).value();
}

TEST(LayoutSearchPassTest, DeepAlignedNchwChainAdoptsNchwc) {
  // Six aligned convs amortize the two boundary transforms under the
  // launch-free spec: the region flips to blocked NCHWc, the input and
  // output get exactly one transform each, and the external contract
  // (NCHW output) is preserved.
  Graph g = DeepConvChain(6, kNCHWcBlock, 12);
  PassStats stats;
  Graph searched = LayoutSearchPass(g, LaunchFreeSpec(), &stats);
  EXPECT_EQ(stats.layout_transforms_inserted, 2);
  EXPECT_EQ(CountTransforms(searched), 2);
  for (const Node& n : searched.nodes()) {
    if (n.kind == OpKind::kConv2d) {
      EXPECT_EQ(n.out_desc.layout, Layout::kNCHWc) << n.name;
    }
  }
  EXPECT_EQ(searched.node(searched.output_ids()[0]).out_desc.layout,
            Layout::kNCHW);

  // Semantics: bit-identical at the reference tier, tiered elsewhere.
  Tensor input = RandomTensor(
      TensorDesc(DType::kFloat16, {1, kNCHWcBlock, 12, 12}, Layout::kNCHW),
      77);
  auto a = RefExecutor(g).Run({{"data", input}});
  auto b = RefExecutor(searched).Run({{"data", input}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()[0].MaxAbsDiff(b.value()[0]), 0.0f);
  ExpectMatchesOracle(searched, {{"data", input}}, CpuIsa::kAuto,
                      "layout_search");
}

TEST(LayoutSearchPassTest, DeepUnalignedNchwChainMovesToNhwc) {
  // With channels not divisible by the block width, NCHWc is off the menu
  // and the planner still escapes the NCHW gather tax via NHWC.
  Graph g = DeepConvChain(6, 6, 12);
  PassStats stats;
  Graph searched = LayoutSearchPass(g, LaunchFreeSpec(), &stats);
  EXPECT_EQ(stats.layout_transforms_inserted, 2);
  for (const Node& n : searched.nodes()) {
    if (n.kind == OpKind::kConv2d) {
      EXPECT_EQ(n.out_desc.layout, Layout::kNHWC) << n.name;
    }
  }
  EXPECT_EQ(searched.node(searched.output_ids()[0]).out_desc.layout,
            Layout::kNCHW);
  Tensor input = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 6, 12, 12}, Layout::kNCHW), 78);
  auto a = RefExecutor(g).Run({{"data", input}});
  auto b = RefExecutor(searched).Run({{"data", input}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()[0].MaxAbsDiff(b.value()[0]), 0.0f);
}

TEST(LayoutSearchPassTest, AgreeingPartitionsElideAllTransforms) {
  // Elision pin: an NHWC graph whose regions all choose NHWC must come out
  // with ZERO transform nodes — the boundaries agree, so every would-be
  // transform is elided and counted as such.  A non-flexible pool splits
  // the chain into two regions, making the agreement genuinely
  // inter-partition rather than trivial.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 10, 10, 6});
  NodeId w1 = b.Constant(
      "w1", RandomTensor(TensorDesc(DType::kFloat16, {6, 3, 3, 6}), 51));
  NodeId y = b.Activation(b.Conv2d(x, w1, Attrs(1, 1)),
                          ActivationKind::kRelu);
  y = b.MaxPool2d(y, 2, 2);  // not layout-flexible: region boundary
  NodeId w2 = b.Constant(
      "w2", RandomTensor(TensorDesc(DType::kFloat16, {6, 3, 3, 6}), 52));
  y = b.Activation(b.Conv2d(y, w2, Attrs(1, 1)), ActivationKind::kRelu);
  b.MarkOutput(y);
  Graph g = b.Build().value();

  PassStats stats;
  Graph searched = LayoutSearchPass(g, kT4, &stats);
  EXPECT_EQ(stats.layout_transforms_inserted, 0);
  EXPECT_GE(stats.layout_transforms_elided, 2);  // both region inputs agree
  EXPECT_EQ(CountTransforms(searched), 0);
  EXPECT_EQ(searched.num_nodes(), g.num_nodes());

  Tensor input = RandomTensor(
      TensorDesc(DType::kFloat16, {1, 10, 10, 6}, Layout::kNHWC), 53);
  auto a = RefExecutor(g).Run({{"x", input}});
  auto c = RefExecutor(searched).Run({{"x", input}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value()[0].MaxAbsDiff(c.value()[0]), 0.0f);
}

// ---------------------------------------------------------------------------
// AssignRegionLayouts: planner optima under synthetic cost models
// ---------------------------------------------------------------------------

/// conv -> maxpool -> conv: the pool is unsupported, so the partitioner
/// yields three regions and the outer two plan layouts independently.
Graph ConvPoolConv() {
  GraphBuilder b(DType::kFloat16, Layout::kNCHW);
  NodeId x = b.Input("x", {1, 8, 12, 12}, Layout::kNCHW);
  NodeId w1 =
      b.ConstantDesc("w1", TensorDesc(DType::kFloat16, {8, 3, 3, 8}));
  NodeId y = b.Conv2d(x, w1, Attrs(1, 1), "conv_a");
  y = b.MaxPool2d(y, 2, 2);
  NodeId w2 =
      b.ConstantDesc("w2", TensorDesc(DType::kFloat16, {8, 3, 3, 8}));
  y = b.Conv2d(y, w2, Attrs(1, 1), "conv_b");
  b.MarkOutput(y);
  auto g = b.Build();
  BOLT_CHECK(g.ok());
  return std::move(g).value();
}

TEST(AssignRegionLayoutsTest, PicksCheapestLayoutPerRegion) {
  Graph g = ConvPoolConv();
  PartitionResult parts = PartitionGraph(
      g, [](const Graph& gr, const Node& n) {
        return n.kind == OpKind::kConv2d && IsLayoutFlexible(gr, n);
      });
  ASSERT_EQ(parts.regions.size(), 3u);

  LayoutCostModel model;
  model.candidates = [](const Graph&, const Region& r) {
    return r.offloaded ? std::vector<Layout>{Layout::kNCHW, Layout::kNHWC}
                       : std::vector<Layout>{};
  };
  // NHWC is 10x cheaper to execute; transforms cost 1 each.  Both conv
  // regions must flip to NHWC and pay their boundary transforms.
  model.region_cost_us = [](const Graph&, const Region&, Layout l) {
    return l == Layout::kNHWC ? 1.0 : 10.0;
  };
  model.transform_cost_us = [](const TensorDesc&, Layout from, Layout to) {
    return from == to ? 0.0 : 1.0;
  };
  LayoutPlan plan = AssignRegionLayouts(g, parts, model);
  ASSERT_EQ(plan.region_layout.size(), 3u);
  int flexible = 0;
  for (size_t i = 0; i < parts.regions.size(); ++i) {
    if (!parts.regions[i].offloaded) {
      EXPECT_EQ(plan.region_layout[i], Layout::kAny);
      continue;
    }
    ++flexible;
    EXPECT_EQ(plan.region_layout[i], Layout::kNHWC);
  }
  EXPECT_EQ(flexible, 2);
  // conv_a: NCHW input disagrees (1 transform); conv_b: the pool's NCHW
  // output disagrees (1) and the graph output must return to NCHW (1).
  EXPECT_EQ(plan.boundary_transforms, 3);
  EXPECT_EQ(plan.elided_transforms, 0);
  // 2 region costs (1.0 each) + 3 transforms (1.0 each).
  EXPECT_DOUBLE_EQ(plan.total_cost_us, 5.0);
}

TEST(AssignRegionLayoutsTest, TransformTaxKeepsNativeLayoutAndElides) {
  Graph g = ConvPoolConv();
  PartitionResult parts = PartitionGraph(
      g, [](const Graph& gr, const Node& n) {
        return n.kind == OpKind::kConv2d && IsLayoutFlexible(gr, n);
      });
  LayoutCostModel model;
  model.candidates = [](const Graph&, const Region& r) {
    return r.offloaded ? std::vector<Layout>{Layout::kNCHW, Layout::kNHWC}
                       : std::vector<Layout>{};
  };
  // Execution barely favors NHWC, but transforms are ruinous: regions
  // must stay NCHW and every boundary is elided.
  model.region_cost_us = [](const Graph&, const Region&, Layout l) {
    return l == Layout::kNHWC ? 1.0 : 1.5;
  };
  model.transform_cost_us = [](const TensorDesc&, Layout from, Layout to) {
    return from == to ? 0.0 : 100.0;
  };
  LayoutPlan plan = AssignRegionLayouts(g, parts, model);
  for (size_t i = 0; i < parts.regions.size(); ++i) {
    if (parts.regions[i].offloaded) {
      EXPECT_EQ(plan.region_layout[i], Layout::kNCHW);
    }
  }
  EXPECT_EQ(plan.boundary_transforms, 0);
  EXPECT_EQ(plan.elided_transforms, 2);
  EXPECT_DOUBLE_EQ(plan.total_cost_us, 3.0);
}

TEST(AssignRegionLayoutsTest, ProductionModelOffersNchwcOnlyWhenAligned) {
  // Production candidate sets: the aligned chain gets all three layouts,
  // the unaligned one only the unblocked pair.
  for (int64_t c : {kNCHWcBlock, int64_t{6}}) {
    Graph g = DeepConvChain(2, c, 10);
    PartitionResult parts = PartitionGraph(
        g,
        [](const Graph& gr, const Node& n) { return IsLayoutFlexible(gr, n); });
    const LayoutCostModel model = MakeCpuLayoutCostModel(kT4);
    bool saw_flexible = false;
    for (const Region& r : parts.regions) {
      if (!r.offloaded) continue;
      saw_flexible = true;
      const std::vector<Layout> cands = model.candidates(g, r);
      if (c % kNCHWcBlock == 0) {
        ASSERT_EQ(cands.size(), 3u);
        EXPECT_EQ(cands[2], Layout::kNCHWc);
      } else {
        ASSERT_EQ(cands.size(), 2u);
      }
      EXPECT_EQ(cands[0], Layout::kNCHW);
      EXPECT_EQ(cands[1], Layout::kNHWC);
    }
    EXPECT_TRUE(saw_flexible) << "c=" << c;
  }
}

// ---------------------------------------------------------------------------
// Cost model: monotonicity and affinity-ordering pins
// ---------------------------------------------------------------------------

TEST(LayoutCostModelTest, TransformCostZeroOnAgreementMonotoneInBytes) {
  const TensorDesc small(DType::kFloat16, {1, 8, 8, 8});
  const TensorDesc medium(DType::kFloat16, {1, 16, 16, 16});
  const TensorDesc large(DType::kFloat32, {1, 16, 32, 32});
  for (Layout l : {Layout::kNCHW, Layout::kNHWC, Layout::kNCHWc}) {
    EXPECT_EQ(LayoutTransformCostUs(kT4, large, l, l), 0.0);
  }
  const double s =
      LayoutTransformCostUs(kT4, small, Layout::kNCHW, Layout::kNHWC);
  const double m =
      LayoutTransformCostUs(kT4, medium, Layout::kNCHW, Layout::kNHWC);
  const double l =
      LayoutTransformCostUs(kT4, large, Layout::kNCHW, Layout::kNCHWc);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, m);
  EXPECT_LT(m, l);
}

TEST(LayoutCostModelTest, ConvAffinityOrderingHoldsAcrossShapes) {
  // The ordering cost(NCHW) > cost(NHWC) > cost(NCHWc) is what the
  // planner's choices lean on; it must hold for every conv shape.
  Rng rng(606);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t c = kNCHWcBlock * rng.Uniform(1, 3);
    const int64_t h = rng.Uniform(4, 20);
    Graph g = DeepConvChain(1, c, h);
    const Node* conv = nullptr;
    for (const Node& n : g.nodes()) {
      if (n.kind == OpKind::kConv2d) conv = &n;
    }
    ASSERT_NE(conv, nullptr);
    SCOPED_TRACE(StrCat("c=", c, " h=", h));
    const double nchw = ConvLayoutAffinityCostUs(kT4, g, *conv, Layout::kNCHW);
    const double nhwc = ConvLayoutAffinityCostUs(kT4, g, *conv, Layout::kNHWC);
    const double nchwc =
        ConvLayoutAffinityCostUs(kT4, g, *conv, Layout::kNCHWc);
    EXPECT_GT(nchw, nhwc);
    EXPECT_GT(nhwc, nchwc);
    EXPECT_GT(nchwc, 0.0);
  }
}

TEST(LayoutCostModelTest, FlexibilityPredicateMatchesDocumentedOps) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 6, 6, 8});
  NodeId w = b.ConstantDesc("w", TensorDesc(DType::kFloat16, {8, 3, 3, 8}));
  NodeId conv = b.Conv2d(x, w, Attrs(1, 1));
  NodeId bias = b.BiasAdd(
      conv, b.ConstantDesc("bias", TensorDesc(DType::kFloat16, {8})));
  NodeId act = b.Activation(bias, ActivationKind::kRelu);
  NodeId pool = b.MaxPool2d(act, 2, 2);
  NodeId flat = b.Flatten(pool);
  NodeId wd = b.ConstantDesc("wd", TensorDesc(DType::kFloat16, {4, 72}));
  NodeId dense = b.Dense(flat, wd);
  b.MarkOutput(dense);
  Graph g = b.Build().value();
  EXPECT_TRUE(IsLayoutFlexible(g, g.node(conv)));
  EXPECT_TRUE(IsLayoutFlexible(g, g.node(bias)));
  EXPECT_TRUE(IsLayoutFlexible(g, g.node(act)));
  EXPECT_FALSE(IsLayoutFlexible(g, g.node(pool)));   // not retaggable
  EXPECT_FALSE(IsLayoutFlexible(g, g.node(flat)));   // rank-2
  EXPECT_FALSE(IsLayoutFlexible(g, g.node(dense)));  // rank-2
}

}  // namespace
}  // namespace bolt
