// Tests for (a) persistent GEMM fusion of dense chains through the full
// engine — the recommendation-model (DLRM/DCNv2) pattern behind Table 1 —
// and (b) the shared host-op cost model.

#include <gtest/gtest.h>

#include "bolt/engine.h"
#include "bolt/hostcost.h"
#include "common/rng.h"
#include "ir/interpreter.h"

namespace bolt {
namespace {

Tensor RandomWeight(std::vector<int64_t> shape, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, std::move(shape)));
  Rng rng(seed);
  int64_t fan = 1;
  for (size_t i = 1; i < t.shape().size(); ++i) fan *= t.shape()[i];
  rng.FillNormal(t.data(), 1.0f / std::sqrt(static_cast<float>(fan)));
  t.Quantize();
  return t;
}

/// DLRM-style bottom MLP: dense+relu chain with shrinking widths and a
/// large batch (the memory-bound regime persistent kernels target).
Graph BuildMlp(int64_t batch, std::vector<int64_t> widths, int64_t in,
               bool materialize) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("features", {batch, in}, Layout::kRowMajor);
  int64_t prev = in;
  int layer = 0;
  for (int64_t width : widths) {
    NodeId w =
        materialize
            ? b.Constant(StrCat("w", layer),
                         RandomWeight({width, prev}, 100 + layer))
            : b.ConstantDesc(StrCat("w", layer),
                             TensorDesc(DType::kFloat16, {width, prev}));
    x = b.Dense(x, w, StrCat("fc", layer));
    x = b.Activation(x, ActivationKind::kRelu);
    prev = width;
    ++layer;
  }
  b.MarkOutput(x);
  auto g = b.Build();
  BOLT_CHECK(g.ok());
  return std::move(g).value();
}

TEST(MlpFusionTest, EngineFusesDenseChainIntoPersistentGemm) {
  // 16384 x (256 -> 64 -> 16): the Table 1 row 2 shape as a model.
  Graph g = BuildMlp(16384, {64, 16}, 256, /*materialize=*/false);
  auto engine = Engine::Compile(g, CompileOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->tuning_report().pass_stats.persistent_fused, 1);
  bool found = false;
  for (const Node& n : engine->optimized_graph().nodes()) {
    if (n.kind == OpKind::kBoltB2BGemm) {
      found = true;
      EXPECT_EQ(n.attrs.GetInt("stages"), 2);
      EXPECT_EQ(n.attrs.GetStr("s0_acts"), "relu");
      EXPECT_EQ(n.attrs.GetStr("s1_acts"), "relu");
    }
  }
  EXPECT_TRUE(found);

  // Fusion must beat the unfused compile.
  CompileOptions unfused;
  unfused.enable_persistent_fusion = false;
  auto base = Engine::Compile(g, unfused);
  ASSERT_TRUE(base.ok());
  EXPECT_LT(engine->EstimatedLatencyUs(), base->EstimatedLatencyUs());
}

TEST(MlpFusionTest, FunctionalEquivalence) {
  Graph g = BuildMlp(96, {32, 8}, 48, /*materialize=*/true);
  auto engine = Engine::Compile(g, CompileOptions{});
  ASSERT_TRUE(engine.ok());
  // The dense chain fused persistently even at this small scale?  Not
  // guaranteed (benefit check); either way numerics must match.
  Tensor input(TensorDesc(DType::kFloat16, {96, 48}, Layout::kRowMajor));
  Rng rng(55);
  rng.FillNormal(input.data(), 0.5f);
  input.Quantize();
  std::map<std::string, Tensor> inputs{{"features", input}};
  auto out = engine->Run(inputs);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto ref = Interpreter(g).Run(inputs);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(out.value()[0].MaxAbsDiff(ref.value()[0]), 5e-3f);
}

TEST(MlpFusionTest, WideLayersAreNotFused) {
  // N=3072 violates threadblock residence; the chain must stay unfused.
  Graph g = BuildMlp(1280, {3072, 768}, 768, /*materialize=*/false);
  auto engine = Engine::Compile(g, CompileOptions{});
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->tuning_report().pass_stats.persistent_fused, 0);
}

// ---- Host-op cost model ----------------------------------------------------

class HostCostTest : public ::testing::Test {
 protected:
  HostCostTest() : spec_(DeviceSpec::TeslaT4()) {}

  Graph MakeUnaryGraph(OpKind kind, std::vector<int64_t> shape) {
    GraphBuilder b(DType::kFloat16, Layout::kNHWC);
    NodeId x = b.Input("x", shape,
                       shape.size() == 4 ? Layout::kNHWC
                                         : Layout::kRowMajor);
    Node n;
    n.kind = kind;
    n.inputs = {x};
    n.out_desc = b.graph().node(x).out_desc;
    if (kind == OpKind::kMaxPool2d) {
      n.attrs.SetInt("kernel", 2);
      n.attrs.SetInt("stride", 2);
    }
    b.graph().AddNode(std::move(n));
    b.MarkOutput(0);
    auto g = b.Build();
    BOLT_CHECK(g.ok());
    return std::move(g).value();
  }

  DeviceSpec spec_;
};

TEST_F(HostCostTest, FreeOps) {
  Graph g = MakeUnaryGraph(OpKind::kFlatten, {32, 8, 8, 64});
  EXPECT_DOUBLE_EQ(HostOpCostUs(spec_, g, g.nodes().back()), 0.0);
}

TEST_F(HostCostTest, EveryKernelPaysALaunch) {
  for (OpKind kind : {OpKind::kActivation, OpKind::kSoftmax,
                      OpKind::kLayoutTransform, OpKind::kMaxPool2d}) {
    Graph g = MakeUnaryGraph(kind, {32, 8, 8, 64});
    EXPECT_GE(HostOpCostUs(spec_, g, g.nodes().back()),
              spec_.kernel_launch_us)
        << OpKindName(kind);
  }
}

TEST_F(HostCostTest, CostScalesWithTensorSize) {
  Graph small = MakeUnaryGraph(OpKind::kSoftmax, {32, 1024});
  Graph large = MakeUnaryGraph(OpKind::kSoftmax, {512, 4096});
  EXPECT_GT(HostOpCostUs(spec_, large, large.nodes().back()),
            HostOpCostUs(spec_, small, small.nodes().back()));
}

TEST_F(HostCostTest, ChainCostsOneLaunchNotMany) {
  // bias -> relu -> gelu as one fused chain vs three kernels.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {32, 16, 16, 64});
  NodeId bias = b.Constant(
      "b", Tensor(TensorDesc(DType::kFloat16, {64}, Layout::kRowMajor)));
  NodeId y1 = b.BiasAdd(x, bias);
  NodeId y2 = b.Activation(y1, ActivationKind::kRelu);
  NodeId y3 = b.Activation(y2, ActivationKind::kGelu);
  b.MarkOutput(y3);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  const double fused =
      ElementwiseChainCostUs(spec_, *g, {y1, y2, y3});
  double separate = 0.0;
  for (NodeId id : {y1, y2, y3}) {
    separate += HostOpCostUs(spec_, *g, g->node(id));
  }
  EXPECT_LT(fused, 0.5 * separate);
  EXPECT_GE(fused, spec_.kernel_launch_us);
}

TEST_F(HostCostTest, ElementwiseFusabilityPredicate) {
  EXPECT_TRUE(IsElementwiseFusable(OpKind::kBiasAdd));
  EXPECT_TRUE(IsElementwiseFusable(OpKind::kActivation));
  EXPECT_TRUE(IsElementwiseFusable(OpKind::kAdd));
  EXPECT_FALSE(IsElementwiseFusable(OpKind::kMaxPool2d));
  EXPECT_FALSE(IsElementwiseFusable(OpKind::kConv2d));
  EXPECT_FALSE(IsElementwiseFusable(OpKind::kConcat));
}

}  // namespace
}  // namespace bolt
