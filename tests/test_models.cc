// Tests for the model zoo and the RepVGG re-parameterization.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ir/interpreter.h"
#include "models/repvgg_reparam.h"
#include "models/workloads.h"
#include "models/zoo.h"

namespace bolt {
namespace models {
namespace {

ModelOptions SmallOptions() {
  ModelOptions o;
  o.batch = 1;
  o.image_size = 32;
  o.num_classes = 10;
  o.materialize_weights = false;
  return o;
}

TEST(ZooTest, VggStructure) {
  auto g = BuildVgg(16, SmallOptions());
  ASSERT_TRUE(g.ok());
  int convs = 0, pools = 0, dense = 0;
  for (const Node& n : g->nodes()) {
    convs += n.kind == OpKind::kConv2d;
    pools += n.kind == OpKind::kMaxPool2d;
    dense += n.kind == OpKind::kDense;
  }
  EXPECT_EQ(convs, 13);  // VGG-16 = 13 convs + 3 FC
  EXPECT_EQ(pools, 5);
  EXPECT_EQ(dense, 3);
  const Node& out = g->node(g->output_ids()[0]);
  EXPECT_EQ(out.out_desc.shape, (std::vector<int64_t>{1, 10}));
}

TEST(ZooTest, VggDepthVariants) {
  for (int depth : {11, 13, 16, 19}) {
    auto g = BuildVgg(depth, SmallOptions());
    ASSERT_TRUE(g.ok()) << depth;
    int convs = 0;
    for (const Node& n : g->nodes()) convs += n.kind == OpKind::kConv2d;
    EXPECT_EQ(convs, depth - 3) << depth;
  }
  EXPECT_FALSE(BuildVgg(15, SmallOptions()).ok());
}

TEST(ZooTest, ResNet50Structure) {
  auto g = BuildResNet(50, SmallOptions());
  ASSERT_TRUE(g.ok());
  int convs = 0, adds = 0;
  for (const Node& n : g->nodes()) {
    convs += n.kind == OpKind::kConv2d;
    adds += n.kind == OpKind::kAdd;
  }
  // 1 stem + 16 blocks x 3 convs + 4 downsamples = 53 convs, 16 adds.
  EXPECT_EQ(convs, 53);
  EXPECT_EQ(adds, 16);
}

TEST(ZooTest, ResNet18Structure) {
  auto g = BuildResNet(18, SmallOptions());
  ASSERT_TRUE(g.ok());
  int convs = 0;
  for (const Node& n : g->nodes()) convs += n.kind == OpKind::kConv2d;
  // 1 stem + 8 blocks x 2 + 3 downsamples = 20.
  EXPECT_EQ(convs, 20);
}

TEST(ZooTest, RepVggDeployIsPlainStack) {
  RepVggOptions o;
  static_cast<ModelOptions&>(o) = SmallOptions();
  auto g = BuildRepVgg(RepVggVariant::kA0, o);
  ASSERT_TRUE(g.ok());
  int convs = 0, adds = 0;
  for (const Node& n : g->nodes()) {
    convs += n.kind == OpKind::kConv2d;
    adds += n.kind == OpKind::kAdd;
  }
  EXPECT_EQ(convs, 22);  // A0 depths 1+2+4+14+1
  EXPECT_EQ(adds, 0);    // deploy form: branches re-parameterized away
}

TEST(ZooTest, RepVggAugmentAdds1x1Convs) {
  RepVggOptions base;
  static_cast<ModelOptions&>(base) = SmallOptions();
  RepVggOptions aug = base;
  aug.augment_1x1 = true;
  auto g0 = BuildRepVgg(RepVggVariant::kA0, base);
  auto g1 = BuildRepVgg(RepVggVariant::kA0, aug);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  int convs0 = 0, convs1 = 0, pointwise = 0;
  for (const Node& n : g0->nodes()) convs0 += n.kind == OpKind::kConv2d;
  for (const Node& n : g1->nodes()) {
    if (n.kind != OpKind::kConv2d) continue;
    ++convs1;
    const Node& w = g1->node(n.inputs[1]);
    if (w.out_desc.shape[1] == 1 && w.out_desc.shape[2] == 1) ++pointwise;
  }
  // One 1x1 after each 3x3 except the final wide stage (21 of 22).
  EXPECT_EQ(convs1, convs0 + 21);
  EXPECT_EQ(pointwise, 21);
  // Augmentation grows parameters (paper Table 5: A0 8.31M -> 13.35M).
  EXPECT_GT(ParamsMillions(*g1), ParamsMillions(*g0));
}

TEST(ZooTest, RepVggParamCountsMatchPaperBallpark) {
  // Paper Table 5 (ImageNet, 1000 classes): A0 8.31M, A1 12.79M,
  // B0 14.34M params. Our deploy-form builder should land within ~15%
  // (we add biases instead of folded BN parameters).
  RepVggOptions o;
  o.batch = 1;
  o.image_size = 224;
  o.num_classes = 1000;
  struct Case {
    RepVggVariant v;
    double paper_millions;
  };
  for (const Case& c : {Case{RepVggVariant::kA0, 8.31},
                        Case{RepVggVariant::kA1, 12.79},
                        Case{RepVggVariant::kB0, 14.34}}) {
    auto g = BuildRepVgg(c.v, o);
    ASSERT_TRUE(g.ok());
    const double params = ParamsMillions(*g);
    EXPECT_GT(params, c.paper_millions * 0.85);
    EXPECT_LT(params, c.paper_millions * 1.15);
  }
}

TEST(ZooTest, ParamCountsMatchTheRealModels) {
  // Ground truth from torchvision (conv/dense weights + biases, no BN):
  // VGG-16 138.36M, ResNet-50 25.56M, ResNet-18 11.69M.
  ModelOptions o;
  o.batch = 1;
  o.image_size = 224;
  o.num_classes = 1000;
  auto vgg16 = BuildVgg(16, o);
  auto resnet50 = BuildResNet(50, o);
  auto resnet18 = BuildResNet(18, o);
  ASSERT_TRUE(vgg16.ok());
  ASSERT_TRUE(resnet50.ok());
  ASSERT_TRUE(resnet18.ok());
  EXPECT_NEAR(ParamsMillions(*vgg16), 138.36, 0.2);
  EXPECT_NEAR(ParamsMillions(*resnet50), 25.56, 0.2);
  EXPECT_NEAR(ParamsMillions(*resnet18), 11.69, 0.2);
}

TEST(ZooTest, Fig10ModelsBuild) {
  ModelOptions o = SmallOptions();
  auto models = Fig10Models(o);
  ASSERT_TRUE(models.ok());
  EXPECT_EQ(models->size(), 6u);
  for (const auto& entry : *models) {
    EXPECT_TRUE(entry.graph.Validate().ok()) << entry.name;
  }
}

TEST(ZooTest, MaterializedWeightsRunFunctionally) {
  ModelOptions o = SmallOptions();
  o.image_size = 16;
  o.materialize_weights = true;
  auto g = BuildVgg(11, o);
  ASSERT_TRUE(g.ok());
  Tensor input(TensorDesc(DType::kFloat16, {1, 3, 16, 16}, Layout::kNCHW));
  Rng rng(3);
  rng.FillNormal(input.data(), 0.5f);
  input.Quantize();
  auto out = Interpreter(*g).Run({{"data", input}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Softmax output sums to ~1.
  float sum = 0.0f;
  for (int i = 0; i < 10; ++i) sum += out.value()[0].at(i);
  EXPECT_NEAR(sum, 1.0f, 1e-2f);
}

TEST(WorkloadsTest, PaperTablesPopulated) {
  EXPECT_EQ(workloads::Fig1Gemms().size(), 5u);
  EXPECT_EQ(workloads::Fig8bConvs().size(), 6u);
  EXPECT_EQ(workloads::Table1Workloads().size(), 4u);
  EXPECT_EQ(workloads::Table2Workloads().size(), 6u);
  EXPECT_EQ(workloads::Table3Workloads().size(), 6u);
  // BERT GEMM M = batch 32 x seqlen 40.
  EXPECT_EQ(workloads::Fig1Gemms()[2].coord.m, 1280);
  // Table 2 second convs are pointwise and channel-chained.
  for (const auto& w : workloads::Table2Workloads()) {
    EXPECT_TRUE(w.conv1.IsPointwise());
    EXPECT_EQ(w.conv1.c, w.conv0.k);
    EXPECT_EQ(w.conv1.h, w.conv0.out_h());
  }
  // Table 3 input channels are not divisible by 8.
  for (const auto& w : workloads::Table3Workloads()) {
    EXPECT_NE(w.problem.c % 8, 0);
  }
}

// ---- Re-parameterization ---------------------------------------------------

BnParams RandomBn(int64_t channels, uint64_t seed) {
  Rng rng(seed);
  BnParams bn;
  bn.gamma.resize(channels);
  bn.beta.resize(channels);
  bn.running_mean.resize(channels);
  bn.running_var.resize(channels);
  for (int64_t i = 0; i < channels; ++i) {
    bn.gamma[i] = rng.UniformFloat(0.5f, 1.5f);
    bn.beta[i] = rng.Normal(0.0f, 0.2f);
    bn.running_mean[i] = rng.Normal(0.0f, 0.2f);
    bn.running_var[i] = rng.UniformFloat(0.5f, 1.5f);
  }
  return bn;
}

Tensor RandomKernel(std::vector<int64_t> shape, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat32, std::move(shape)));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  return t;
}

// Reference: conv + BN applied per channel.
Tensor ConvBnRef(const Tensor& x, const Tensor& w, const BnParams& bn,
                 const Conv2dAttrs& attrs) {
  Tensor y = refop::Conv2d(x, w, attrs);
  const int64_t c = w.shape()[0];
  for (int64_t i = 0; i < y.num_elements(); ++i) {
    const int64_t ch = i % c;  // NHWC: channels innermost
    const float scale =
        bn.gamma[ch] / std::sqrt(bn.running_var[ch] + bn.eps);
    y.at(i) = (y.at(i) - bn.running_mean[ch]) * scale + bn.beta[ch];
  }
  return y;
}

TEST(ReparamTest, FoldConvBnMatchesReference) {
  Tensor x(TensorDesc(DType::kFloat32, {1, 6, 6, 4}, Layout::kNHWC));
  Rng rng(7);
  rng.FillNormal(x.data(), 0.5f);
  Tensor w = RandomKernel({8, 3, 3, 4}, 8);
  BnParams bn = RandomBn(8, 9);

  FusedConv fused = FoldConvBn(w, bn);
  Conv2dAttrs attrs;
  attrs.pad_h = attrs.pad_w = 1;
  Tensor expected = ConvBnRef(x, w, bn, attrs);
  Tensor got = refop::Conv2d(x, fused.weight, attrs);
  Tensor bias(TensorDesc(DType::kFloat32, {8}), std::vector<float>(
                                                    fused.bias));
  got = refop::BiasAdd(got, bias);
  EXPECT_LE(got.MaxAbsDiff(expected), 1e-4f);
}

TEST(ReparamTest, FullBlockCollapsesToSingleConv) {
  // y = BN3(conv3(x)) + BN1(conv1(x)) + BNid(x) must equal the fused conv.
  const int64_t c = 6;
  Tensor x(TensorDesc(DType::kFloat32, {2, 5, 5, c}, Layout::kNHWC));
  Rng rng(17);
  rng.FillNormal(x.data(), 0.5f);

  RepVggBlockWeights block;
  block.w3x3 = RandomKernel({c, 3, 3, c}, 18);
  block.bn3 = RandomBn(c, 19);
  block.w1x1 = RandomKernel({c, 1, 1, c}, 20);
  block.bn1 = RandomBn(c, 21);
  block.has_identity = true;
  block.bn_id = RandomBn(c, 22);

  auto fused = Reparameterize(block);
  ASSERT_TRUE(fused.ok());

  Conv2dAttrs pad1;
  pad1.pad_h = pad1.pad_w = 1;
  Tensor branch3 = ConvBnRef(x, block.w3x3, block.bn3, pad1);
  Tensor branch1 = ConvBnRef(x, block.w1x1, block.bn1, Conv2dAttrs{});
  // Identity branch: BN applied directly to x.
  Tensor branch_id = x;
  for (int64_t i = 0; i < x.num_elements(); ++i) {
    const int64_t ch = i % c;
    const float scale = block.bn_id->gamma[ch] /
                        std::sqrt(block.bn_id->running_var[ch] + 1e-5f);
    branch_id.at(i) =
        (x.at(i) - block.bn_id->running_mean[ch]) * scale +
        block.bn_id->beta[ch];
  }
  Tensor expected = refop::Add(refop::Add(branch3, branch1), branch_id);

  Tensor got = refop::Conv2d(x, fused->weight, pad1);
  Tensor bias(TensorDesc(DType::kFloat32, {c}),
              std::vector<float>(fused->bias));
  got = refop::BiasAdd(got, bias);
  EXPECT_LE(got.MaxAbsDiff(expected), 1e-3f);
}

TEST(ReparamTest, IdentityBranchRequiresMatchingChannels) {
  RepVggBlockWeights block;
  block.w3x3 = RandomKernel({8, 3, 3, 4}, 23);
  block.bn3 = RandomBn(8, 24);
  block.w1x1 = RandomKernel({8, 1, 1, 4}, 25);
  block.bn1 = RandomBn(8, 26);
  block.has_identity = true;  // but 8 != 4
  block.bn_id = RandomBn(8, 27);
  EXPECT_FALSE(Reparameterize(block).ok());
}

TEST(ReparamTest, Pad1x1PlacesCentreTap) {
  Tensor w = RandomKernel({2, 1, 1, 3}, 28);
  Tensor padded = Pad1x1To3x3(w);
  EXPECT_EQ(padded.shape(), (std::vector<int64_t>{2, 3, 3, 3}));
  // Centre tap of output channel 1, input channel 2.
  EXPECT_EQ(padded.at(((1 * 3 + 1) * 3 + 1) * 3 + 2), w.at(1 * 3 + 2));
  // A corner tap is zero.
  EXPECT_EQ(padded.at(0), 0.0f);
}

TEST(ReparamTest, IdentityKernelIsDelta) {
  Tensor id = Identity3x3Kernel(4, DType::kFloat32);
  Tensor x(TensorDesc(DType::kFloat32, {1, 4, 4, 4}, Layout::kNHWC));
  Rng rng(29);
  rng.FillNormal(x.data(), 0.5f);
  Conv2dAttrs pad1;
  pad1.pad_h = pad1.pad_w = 1;
  Tensor y = refop::Conv2d(x, id, pad1);
  EXPECT_LE(y.MaxAbsDiff(x), 1e-6f);
}

}  // namespace
}  // namespace models
}  // namespace bolt
