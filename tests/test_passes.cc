// Tests for Bolt's graph passes: layout transform, epilogue fusion,
// persistent-kernel fusion, and padding — each as an isolated rewrite.

#include <gtest/gtest.h>

#include "bolt/passes.h"
#include "common/rng.h"
#include "ir/interpreter.h"

namespace bolt {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

Tensor RandomWeight(std::vector<int64_t> shape, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, std::move(shape)));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  t.Quantize();
  return t;
}

/// conv(3x3) -> bias -> relu -> conv(1x1) -> bias -> relu, NCHW input.
Graph BuildConvChain(bool materialize = true) {
  GraphBuilder b(DType::kFloat16, Layout::kNCHW);
  NodeId x = b.Input("data", {1, 8, 10, 10}, Layout::kNCHW);
  NodeId w1 = materialize
                  ? b.Constant("w1", RandomWeight({16, 3, 3, 8}, 1))
                  : b.ConstantDesc("w1",
                                   TensorDesc(DType::kFloat16,
                                              {16, 3, 3, 8}));
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, w1, a, "conv0");
  y = b.BiasAdd(y, b.Constant("b1", RandomWeight({16}, 2)));
  y = b.Activation(y, ActivationKind::kRelu);
  NodeId w2 = b.Constant("w2", RandomWeight({16, 1, 1, 16}, 3));
  y = b.Conv2d(y, w2, Conv2dAttrs{}, "conv1");
  y = b.BiasAdd(y, b.Constant("b2", RandomWeight({16}, 4)));
  y = b.Activation(y, ActivationKind::kRelu);
  b.MarkOutput(y);
  auto g = b.Build();
  BOLT_CHECK(g.ok());
  return std::move(g).value();
}

TEST(LayoutTransformPassTest, InsertsBoundaryTransforms) {
  PassStats stats;
  Graph g = LayoutTransformPass(BuildConvChain(), &stats);
  // Input transform + output transform (output is rank-4 NCHW).
  EXPECT_EQ(stats.layout_transforms_inserted, 2);
  int transforms = 0;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kLayoutTransform) ++transforms;
    if (n.kind == OpKind::kConv2d) {
      EXPECT_EQ(n.out_desc.layout, Layout::kNHWC);
    }
  }
  EXPECT_EQ(transforms, 2);
  // Graph output is back in NCHW.
  EXPECT_EQ(g.node(g.output_ids()[0]).out_desc.layout, Layout::kNCHW);
}

TEST(LayoutTransformPassTest, PreservesSemantics) {
  Graph original = BuildConvChain();
  Graph nhwc = LayoutTransformPass(original);

  Tensor input(TensorDesc(DType::kFloat16, {1, 8, 10, 10}, Layout::kNCHW));
  Rng rng(9);
  rng.FillNormal(input.data(), 0.5f);
  input.Quantize();

  auto a = Interpreter(original).Run({{"data", input}});
  auto b = Interpreter(nhwc).Run({{"data", input}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()[0].MaxAbsDiff(b.value()[0]), 0.0f);
}

TEST(LayoutTransformPassTest, NhwcGraphPassesThrough) {
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 6, 6, 8});
  NodeId y = b.Activation(x, ActivationKind::kRelu);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  PassStats stats;
  Graph out = LayoutTransformPass(*g, &stats);
  EXPECT_EQ(stats.layout_transforms_inserted, 0);
  EXPECT_EQ(out.num_nodes(), g->num_nodes());
}

TEST(EpilogueFusionPassTest, FoldsBiasAndActivation) {
  Graph g = LayoutTransformPass(BuildConvChain());
  PassStats stats;
  Graph fused = EpilogueFusionPass(g, true, &stats);
  EXPECT_EQ(stats.epilogues_fused, 4);  // 2x (bias + relu)
  int composites = 0;
  for (const Node& n : fused.nodes()) {
    EXPECT_NE(n.kind, OpKind::kBiasAdd);
    EXPECT_NE(n.kind, OpKind::kActivation);
    if (n.kind == OpKind::kBoltConv2d) {
      ++composites;
      EXPECT_EQ(n.attrs.GetInt("has_bias"), 1);
      EXPECT_EQ(n.attrs.GetStr("acts"), "relu");
      EXPECT_EQ(n.inputs.size(), 3u);  // x, w, bias
    }
  }
  EXPECT_EQ(composites, 2);
}

TEST(EpilogueFusionPassTest, DisabledStillCreatesComposites) {
  Graph g = LayoutTransformPass(BuildConvChain());
  PassStats stats;
  Graph fused = EpilogueFusionPass(g, false, &stats);
  EXPECT_EQ(stats.epilogues_fused, 0);
  int composites = 0, bias_ops = 0;
  for (const Node& n : fused.nodes()) {
    if (n.kind == OpKind::kBoltConv2d) ++composites;
    if (n.kind == OpKind::kBiasAdd) ++bias_ops;
  }
  EXPECT_EQ(composites, 2);
  EXPECT_EQ(bias_ops, 2);  // left for the host to fuse
}

TEST(EpilogueFusionPassTest, ResidualBlockPattern) {
  // conv -> bias -> add(skip) -> relu: the ResNet block tail.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 8, 8, 16});
  NodeId w = b.Constant("w", RandomWeight({16, 3, 3, 16}, 5));
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, w, a);
  y = b.BiasAdd(y, b.Constant("bias", RandomWeight({16}, 6)));
  y = b.Add(y, x);
  y = b.Activation(y, ActivationKind::kRelu);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  PassStats stats;
  Graph fused = EpilogueFusionPass(*g, true, &stats);
  EXPECT_EQ(stats.epilogues_fused, 3);
  bool found = false;
  for (const Node& n : fused.nodes()) {
    if (n.kind == OpKind::kBoltConv2d) {
      found = true;
      EXPECT_EQ(n.attrs.GetInt("has_residual"), 1);
      EXPECT_EQ(n.inputs.size(), 4u);  // x, w, bias, residual
    }
  }
  EXPECT_TRUE(found);
}

TEST(EpilogueFusionPassTest, StopsAtMultiConsumerBoundaries) {
  // conv output consumed twice: nothing after it may fold.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 8, 8, 16});
  NodeId w = b.Constant("w", RandomWeight({16, 3, 3, 16}, 7));
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, w, a);
  NodeId r1 = b.Activation(y, ActivationKind::kRelu);
  NodeId r2 = b.Activation(y, ActivationKind::kGelu);
  NodeId sum = b.Add(r1, r2);
  b.MarkOutput(sum);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  PassStats stats;
  Graph fused = EpilogueFusionPass(*g, true, &stats);
  EXPECT_EQ(stats.epilogues_fused, 0);
}

TEST(PersistentFusionPassTest, FusesConvPlusPointwise) {
  Graph g = EpilogueFusionPass(LayoutTransformPass(BuildConvChain()));
  Profiler prof(kT4);
  PassStats stats;
  Graph fused = PersistentKernelFusionPass(g, prof, &stats);
  EXPECT_EQ(stats.persistent_fused, 1);
  EXPECT_EQ(stats.persistent_stages, 2);
  bool found = false;
  for (const Node& n : fused.nodes()) {
    EXPECT_NE(n.kind, OpKind::kBoltConv2d);  // both were consumed
    if (n.kind == OpKind::kBoltB2BConv) {
      found = true;
      EXPECT_EQ(n.attrs.GetInt("stages"), 2);
      EXPECT_EQ(n.inputs.size(), 5u);  // x, w0, b0, w1, b1
      EXPECT_EQ(n.attrs.GetStr("s0_acts"), "relu");
    }
  }
  EXPECT_TRUE(found);
}

TEST(PersistentFusionPassTest, SkipsNonPointwiseSecondConv) {
  // Two 3x3 convs back to back: residence forbids fusion.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {1, 10, 10, 8});
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 1;
  NodeId y = b.Conv2d(x, b.Constant("w1", RandomWeight({16, 3, 3, 8}, 8)),
                      a);
  y = b.Conv2d(y, b.Constant("w2", RandomWeight({16, 3, 3, 16}, 9)), a);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Profiler prof(kT4);
  PassStats stats;
  Graph fused = PersistentKernelFusionPass(EpilogueFusionPass(*g), prof,
                                           &stats);
  EXPECT_EQ(stats.persistent_fused, 0);
}

TEST(PaddingPassTest, PadsUnalignedChannelsWhenProfitable) {
  // A large 5x5 conv with 46 input channels (Table 3 row 2 shape) —
  // padding is profitable there.
  GraphBuilder b(DType::kFloat16, Layout::kNHWC);
  NodeId x = b.Input("x", {32, 20, 26, 46});
  Conv2dAttrs a;
  a.pad_h = a.pad_w = 2;
  NodeId y = b.Conv2d(
      x, b.Constant("w", RandomWeight({32, 5, 5, 46}, 10)), a);
  b.MarkOutput(y);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  Profiler prof(kT4);
  PassStats stats;
  Graph padded = PaddingPass(EpilogueFusionPass(*g), prof, &stats);
  EXPECT_EQ(stats.tensors_padded, 1);

  bool found_pad = false;
  for (const Node& n : padded.nodes()) {
    if (n.kind == OpKind::kPadChannels) {
      found_pad = true;
      EXPECT_EQ(n.out_desc.shape[3], 48);
    }
    if (n.kind == OpKind::kBoltConv2d) {
      EXPECT_EQ(n.attrs.GetInt("padded_from_c"), 46);
      // The weight constant was padded too (and zero-filled).
      const Node& w = padded.node(n.inputs[1]);
      EXPECT_EQ(w.out_desc.shape[3], 48);
      ASSERT_TRUE(padded.is_constant(w.id));
      const Tensor& wt = padded.constant(w.id);
      // Padded tail is zero.
      EXPECT_EQ(wt.at(47), 0.0f);
    }
  }
  EXPECT_TRUE(found_pad);
}

TEST(PaddingPassTest, LeavesAlignedConvsAlone) {
  Graph g = EpilogueFusionPass(LayoutTransformPass(BuildConvChain()));
  Profiler prof(kT4);
  PassStats stats;
  PaddingPass(g, prof, &stats);
  EXPECT_EQ(stats.tensors_padded, 0);
}

TEST(EpilogueAttrsTest, RoundTrip) {
  cutlite::EpilogueSpec e;
  e.has_bias = true;
  e.has_residual = true;
  e.beta = 1.0f;
  e.activations = {ActivationKind::kHardswish, ActivationKind::kRelu};
  AttrMap attrs;
  EpilogueToAttrs(e, attrs, "s1_");
  cutlite::EpilogueSpec back = EpilogueFromAttrs(attrs, "s1_");
  EXPECT_EQ(back.has_bias, e.has_bias);
  EXPECT_EQ(back.has_residual, e.has_residual);
  EXPECT_EQ(back.activations, e.activations);
}

}  // namespace
}  // namespace bolt
