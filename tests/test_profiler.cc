// Tests for Bolt's light-weight profiler: heuristic candidate enumeration,
// best-config selection, tuning-cost accounting, caching, and the
// persistent-fusion profitability analysis.

#include <gtest/gtest.h>

#include "models/workloads.h"
#include "profiler/profiler.h"

namespace bolt {
namespace {

using cutlite::EpilogueSpec;
using cutlite::GemmCoord;
using cutlite::GemmKernel;
using cutlite::KernelConfig;

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

TEST(CandidatesTest, TensNotThousands) {
  // "Bolt produces tens of best parameter combinations" (Section 3.2.2).
  for (const auto& w : workloads::Fig1Gemms()) {
    auto cands = EnumerateGemmCandidates(kT4, w.coord);
    EXPECT_GE(cands.size(), 4u) << w.name;
    EXPECT_LE(cands.size(), 100u) << w.name;
  }
}

TEST(CandidatesTest, AllStructurallyValid) {
  for (const auto& c :
       EnumerateGemmCandidates(kT4, GemmCoord(1280, 3072, 768))) {
    EXPECT_TRUE(c.Validate(kT4).ok()) << c.Name();
  }
}

TEST(CandidatesTest, PrefersFourOrEightWarpsOnLargeProblems) {
  for (const auto& c :
       EnumerateGemmCandidates(kT4, GemmCoord(4096, 4096, 4096))) {
    EXPECT_TRUE(c.warps_per_cta() == 4 || c.warps_per_cta() == 8)
        << c.Name();
  }
}

TEST(CandidatesTest, SmallProblemsGetSmallThreadblocks) {
  // Guideline: small problems need small threadblocks to keep SMs busy.
  auto cands = EnumerateGemmCandidates(kT4, GemmCoord(256, 256, 256));
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_LE(c.threadblock.mn(), 128 * 64) << c.Name();
  }
}

TEST(CandidatesTest, AlignmentsDeriveFromProblem) {
  auto cands = EnumerateGemmCandidates(kT4, GemmCoord(1024, 1000, 46));
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_EQ(c.align_a, 2);  // K=46
    EXPECT_EQ(c.align_c, 8);  // N=1000
  }
}

TEST(CandidatesTest, ExhaustiveIsStrictlyLarger) {
  const GemmCoord p(1280, 3072, 768);
  EXPECT_GT(EnumerateGemmExhaustive(kT4, p).size(),
            3 * EnumerateGemmCandidates(kT4, p).size());
}

TEST(CandidatesTest, HeuristicWithinFewPercentOfExhaustive) {
  // The pruning ablation (DESIGN.md): heuristic candidates must contain a
  // config within 10% of the exhaustive optimum.
  for (const auto& w : workloads::Fig1Gemms()) {
    auto best_of = [&](const std::vector<KernelConfig>& cands) {
      double best = 1e30;
      for (const auto& c : cands) {
        GemmKernel k(w.coord, c, EpilogueSpec::Linear());
        if (!k.CanImplement(kT4).ok()) continue;
        best = std::min(best, k.EstimateUs(kT4));
      }
      return best;
    };
    const double heuristic = best_of(EnumerateGemmCandidates(kT4, w.coord));
    const double exhaustive =
        best_of(EnumerateGemmExhaustive(kT4, w.coord));
    EXPECT_LE(heuristic, exhaustive * 1.10) << w.name;
  }
}

TEST(ProfilerTest, PicksTheMinimumCandidate) {
  Profiler prof(kT4);
  const GemmCoord p(1280, 3072, 768);
  auto r = prof.ProfileGemm(p, EpilogueSpec::Linear());
  ASSERT_TRUE(r.ok());
  for (const auto& c : EnumerateGemmCandidates(kT4, p)) {
    GemmKernel k(p, c, EpilogueSpec::Linear());
    if (!k.CanImplement(kT4).ok()) continue;
    EXPECT_LE(r.value().us, k.EstimateUs(kT4) + 1e-9);
  }
}

TEST(ProfilerTest, CacheHitsAreFree) {
  Profiler prof(kT4);
  const GemmCoord p(1280, 768, 768);
  auto first = prof.ProfileGemm(p, EpilogueSpec::Linear());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  const double seconds_after_first = prof.clock().seconds();
  auto second = prof.ProfileGemm(p, EpilogueSpec::Linear());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_DOUBLE_EQ(prof.clock().seconds(), seconds_after_first);
  EXPECT_EQ(second.value().us, first.value().us);
}

TEST(ProfilerTest, ArchPregenChargedOnce) {
  ProfilerCostModel cost;
  Profiler prof(kT4, cost);
  prof.ProfileGemm(GemmCoord(512, 512, 512), EpilogueSpec::Linear());
  const double after_one = prof.clock().compile_seconds();
  EXPECT_GE(after_one, cost.arch_pregen_s);
  prof.ProfileGemm(GemmCoord(1024, 512, 512), EpilogueSpec::Linear());
  // No additional compile charge: sample programs are reused.
  EXPECT_DOUBLE_EQ(prof.clock().compile_seconds(), after_one);
}

TEST(ProfilerTest, TuningStaysUnderMinutesPerWorkload) {
  Profiler prof(kT4);
  for (const auto& w : workloads::Fig1Gemms()) {
    auto r = prof.ProfileGemm(w.coord, EpilogueSpec::Linear());
    ASSERT_TRUE(r.ok());
  }
  // Five workloads + one-time pregen: well under 5 minutes of simulated
  // tuning (the paper's whole-model budget is 20 minutes).
  EXPECT_LT(prof.clock().minutes(), 5.0);
}

TEST(ProfilerTest, ConvProfileRespectsChannelAlignment) {
  Profiler prof(kT4);
  cutlite::ConvProblem p = workloads::Table3Workloads()[0].problem;
  ASSERT_EQ(p.c % 8, 2 % 8 * 0 + p.c % 8);  // c=46, alignment 2
  auto r = prof.ProfileConv(p, EpilogueSpec::Linear());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().config.align_a, 2);
}

TEST(ProfilerTest, B2bGemmBeneficialOnPaperWorkloads) {
  Profiler prof(kT4);
  EpilogueSpec relu =
      EpilogueSpec::WithActivation(ActivationKind::kRelu, false);
  for (const auto& w : workloads::Table1Workloads()) {
    auto r = prof.ProfileB2bGemm({w.gemm0, w.gemm1}, {relu, relu});
    EXPECT_TRUE(r.feasible) << w.gemm0.ToString();
    EXPECT_TRUE(r.beneficial) << w.gemm0.ToString();
    EXPECT_LT(r.fused_us, r.unfused_us) << w.gemm0.ToString();
    // Speedup in a plausible band around the paper's 1.24-1.46x.
    const double speedup = r.unfused_us / r.fused_us;
    EXPECT_GT(speedup, 1.05) << w.gemm0.ToString();
    EXPECT_LT(speedup, 3.0) << w.gemm0.ToString();
  }
}

TEST(ProfilerTest, B2bInfeasibleForWideLayers) {
  // Threadblock residence cannot hold when N is large (Section 5's
  // limitation: compute-bound wide layers should not be fused).
  Profiler prof(kT4);
  EpilogueSpec relu =
      EpilogueSpec::WithActivation(ActivationKind::kRelu, false);
  auto r = prof.ProfileB2bGemm(
      {GemmCoord(1280, 3072, 768), GemmCoord(1280, 3072, 3072)},
      {relu, relu});
  EXPECT_FALSE(r.feasible);
}

TEST(ProfilerTest, B2bConvBeneficialOnAlignedPaperWorkloads) {
  Profiler prof(kT4);
  EpilogueSpec e = EpilogueSpec::WithActivation(ActivationKind::kRelu);
  for (const auto& w : workloads::Table2Workloads()) {
    if (w.conv0.c % 8 != 0) continue;  // unaligned rows go through padding
    auto r = prof.ProfileB2bConv({w.conv0, w.conv1}, {e, e});
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(r.beneficial);
  }
}

}  // namespace
}  // namespace bolt
