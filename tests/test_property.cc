// Property-based tests: randomized model graphs pushed through the full
// Bolt pipeline under every optimization setting must (a) compile, (b)
// produce outputs numerically equivalent to the reference interpreter,
// and (c) never get slower as optimizations are enabled.  Plus properties
// of the new engine features (shared tuning cache, column reduction).

#include <gtest/gtest.h>

#include <sstream>

#include "bolt/engine.h"
#include "common/rng.h"
#include "ir/interpreter.h"
#include "models/zoo.h"

namespace bolt {
namespace {

/// Generates a random small CNN: conv blocks with random kernel sizes,
/// strides, channel counts (sometimes unaligned), activations, optional
/// residual connections and pooling, ending in a dense head.
Graph RandomModel(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(DType::kFloat16,
                 rng.UniformFloat() < 0.5 ? Layout::kNCHW : Layout::kNHWC);

  auto weight = [&](std::vector<int64_t> shape) {
    Tensor t(TensorDesc(DType::kFloat16, std::move(shape)));
    int64_t fan = 1;
    for (size_t i = 1; i < t.shape().size(); ++i) fan *= t.shape()[i];
    rng.FillNormal(t.data(), 1.0f / std::sqrt(static_cast<float>(fan)));
    t.Quantize();
    return b.Constant(StrCat("w", rng.NextU64() % 100000), std::move(t));
  };

  const int64_t image = 8 + 2 * rng.Uniform(0, 4);  // 8..16
  int64_t channels = rng.Uniform(2, 6);
  const std::vector<int64_t> input_shape =
      b.act_layout() == Layout::kNCHW
          ? std::vector<int64_t>{2, channels, image, image}
          : std::vector<int64_t>{2, image, image, channels};
  NodeId x = b.Input("data", input_shape, b.act_layout());

  const ActivationKind acts[] = {ActivationKind::kRelu,
                                 ActivationKind::kGelu,
                                 ActivationKind::kHardswish,
                                 ActivationKind::kSoftplus};
  const int blocks = static_cast<int>(rng.Uniform(2, 4));
  for (int i = 0; i < blocks; ++i) {
    const TensorDesc& xd = b.graph().node(x).out_desc;
    const bool nhwc = xd.layout == Layout::kNHWC;
    const int64_t cur_h = nhwc ? xd.shape[1] : xd.shape[2];
    const int64_t in_c = nhwc ? xd.shape[3] : xd.shape[1];
    const int64_t out_c = rng.Uniform(4, 20);
    const int64_t kernel = rng.UniformFloat() < 0.4 ? 1 : 3;
    const int64_t stride =
        (cur_h >= 8 && rng.UniformFloat() < 0.3) ? 2 : 1;
    Conv2dAttrs a;
    a.stride_h = a.stride_w = stride;
    a.pad_h = a.pad_w = kernel == 3 ? 1 : 0;
    NodeId skip = x;
    x = b.Conv2d(x, weight({out_c, kernel, kernel, in_c}), a);
    if (rng.UniformFloat() < 0.8) {
      x = b.BiasAdd(x, weight({out_c}));
    }
    // Residual when shapes permit.
    if (stride == 1 && kernel == 1 && out_c == in_c &&
        rng.UniformFloat() < 0.5) {
      x = b.Add(x, skip);
    }
    if (rng.UniformFloat() < 0.9) {
      x = b.Activation(x, acts[rng.Uniform(0, 3)]);
    }
    const TensorDesc& yd = b.graph().node(x).out_desc;
    const int64_t h = yd.layout == Layout::kNHWC ? yd.shape[1]
                                                 : yd.shape[2];
    if (h >= 8 && rng.UniformFloat() < 0.3) {
      x = b.MaxPool2d(x, 2, 2);
    }
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  const TensorDesc& fd = b.graph().node(x).out_desc;
  x = b.Dense(x, weight({5, fd.shape[1]}));
  x = b.Softmax(x);
  b.MarkOutput(x);
  auto g = b.Build();
  BOLT_CHECK_MSG(g.ok(), g.status().ToString());
  return std::move(g).value();
}

Tensor RandomInputFor(const Graph& g, uint64_t seed) {
  const Node& input = g.node(g.input_ids()[0]);
  Tensor t(input.out_desc);
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.6f);
  t.Quantize();
  return t;
}

class RandomModelTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomModelTest, EngineMatchesInterpreterUnderAllOptionSets) {
  const uint64_t seed = 1000 + GetParam();
  Graph g = RandomModel(seed);
  const Tensor input = RandomInputFor(g, seed * 7);
  std::map<std::string, Tensor> inputs{{"data", input}};

  auto ref = Interpreter(LayoutTransformPass(g)).Run(inputs);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (int mask = 0; mask < 8; ++mask) {
    CompileOptions opts;
    opts.enable_epilogue_fusion = mask & 1;
    opts.enable_persistent_fusion = mask & 2;
    opts.enable_padding = mask & 4;
    auto engine = Engine::Compile(g, opts);
    ASSERT_TRUE(engine.ok())
        << "seed " << seed << " mask " << mask << ": "
        << engine.status().ToString();
    auto out = engine->Run(inputs);
    ASSERT_TRUE(out.ok())
        << "seed " << seed << " mask " << mask << ": "
        << out.status().ToString();
    EXPECT_LE(out.value()[0].MaxAbsDiff(ref.value()[0]), 1e-2f)
        << "seed " << seed << " mask " << mask;
    EXPECT_GT(engine->EstimatedLatencyUs(), 0.0);
  }
}

TEST_P(RandomModelTest, OptimizationsNeverHurtLatency) {
  const uint64_t seed = 2000 + GetParam();
  Graph g = RandomModel(seed);
  CompileOptions none;
  none.enable_epilogue_fusion = false;
  none.enable_persistent_fusion = false;
  none.enable_padding = false;
  auto base = Engine::Compile(g, none);
  auto full = Engine::Compile(g, CompileOptions{});
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LE(full->EstimatedLatencyUs(),
            base->EstimatedLatencyUs() * 1.0001)
      << "seed " << seed;
}

TEST_P(RandomModelTest, CompilationIsDeterministic) {
  const uint64_t seed = 3000 + GetParam();
  Graph g = RandomModel(seed);
  auto a = Engine::Compile(g, CompileOptions{});
  auto b = Engine::Compile(g, CompileOptions{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->EstimatedLatencyUs(), b->EstimatedLatencyUs());
  EXPECT_EQ(a->module().FullSource(), b->module().FullSource());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelTest, ::testing::Range(0, 12));

TEST(SharedProfilerTest, SecondCompileReusesTheCache) {
  models::RepVggOptions opts;
  opts.batch = 8;
  opts.image_size = 32;
  opts.num_classes = 10;
  auto a0 = models::BuildRepVgg(models::RepVggVariant::kA0, opts);
  ASSERT_TRUE(a0.ok());

  Profiler shared(DeviceSpec::TeslaT4());
  CompileOptions copts;
  copts.shared_profiler = &shared;
  auto first = Engine::Compile(*a0, copts);
  ASSERT_TRUE(first.ok());
  const double first_s = first->tuning_report().seconds;
  auto second = Engine::Compile(*a0, copts);
  ASSERT_TRUE(second.ok());
  // Everything is cached: the second compile adds (almost) no tuning
  // time — in particular it skips the 90 s arch preparation.
  EXPECT_LT(second->tuning_report().seconds, 0.1 * first_s);
  EXPECT_DOUBLE_EQ(second->EstimatedLatencyUs(),
                   first->EstimatedLatencyUs());
}

TEST(SharedProfilerTest, CacheTransfersAcrossSessionsViaSerialization) {
  models::ModelOptions opts;
  opts.batch = 8;
  opts.image_size = 32;
  opts.num_classes = 10;
  auto g = models::BuildVgg(11, opts);
  ASSERT_TRUE(g.ok());

  Profiler session1(DeviceSpec::TeslaT4());
  CompileOptions copts;
  copts.shared_profiler = &session1;
  ASSERT_TRUE(Engine::Compile(*g, copts).ok());
  std::ostringstream saved;
  ASSERT_TRUE(session1.SaveCache(saved).ok());

  Profiler session2(DeviceSpec::TeslaT4());
  std::istringstream loaded(saved.str());
  ASSERT_TRUE(session2.LoadCache(loaded).ok());
  CompileOptions copts2;
  copts2.shared_profiler = &session2;
  auto warm = Engine::Compile(*g, copts2);
  ASSERT_TRUE(warm.ok());
  // All anchor workloads hit the loaded cache; only pass-level B2B
  // probing (which is not cached) may add time.
  EXPECT_LT(warm->tuning_report().seconds, 10.0);
}

TEST(ColumnReductionTest, SumsMatchOutputColumns) {
  const cutlite::GemmCoord p(24, 16, 32);
  Tensor a(TensorDesc(DType::kFloat16, {p.m, p.k}, Layout::kRowMajor));
  Tensor w(TensorDesc(DType::kFloat16, {p.n, p.k}, Layout::kRowMajor));
  Rng rng(5);
  rng.FillNormal(a.data(), 0.3f);
  rng.FillNormal(w.data(), 0.3f);
  a.Quantize();
  w.Quantize();

  cutlite::EpilogueSpec e =
      cutlite::EpilogueSpec::WithActivation(ActivationKind::kRelu, false);
  e.column_reduction = true;
  cutlite::KernelConfig c;
  c.threadblock = cutlite::GemmShape(32, 16, 32);
  c.warp = cutlite::GemmShape(16, 16, 32);
  c.instruction = cutlite::GemmShape(16, 8, 8);
  cutlite::GemmKernel kernel(p, c, e);
  cutlite::GemmArguments args;
  args.a = &a;
  args.w = &w;
  Tensor sums;
  args.column_sums = &sums;
  auto out = kernel.Run(args);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(sums.num_elements(), p.n);
  for (int64_t j = 0; j < p.n; ++j) {
    float expect = 0.0f;
    for (int64_t i = 0; i < p.m; ++i) expect += out.value().at(i * p.n + j);
    EXPECT_NEAR(sums.at(j), expect, 1e-3f) << "column " << j;
  }
}

}  // namespace
}  // namespace bolt
