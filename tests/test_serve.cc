// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0
//
// Tests for the dynamic-batching serving layer (docs/SERVING.md): bucket
// policy, request-queue coalescing and deadlines, the LRU engine
// registry's eviction and single-flight compilation, batched execution
// vs per-request execution (bit-for-bit on the same engine), the
// two-tier contract vs the reference interpreter, and multi-threaded
// serving (the tsan target).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bolt/engine.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "cpukernels/cpuinfo.h"
#include "cpukernels/tuned.h"
#include "ir/interpreter.h"
#include "serve/bucketing.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "testing/diff_harness.h"
#include "testing/fake_clock.h"

namespace bolt {
namespace serve {
namespace {

Tensor Fp32Weight(std::vector<int64_t> shape, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat32, std::move(shape)));
  Rng rng(seed);
  int64_t fan = 1;
  for (size_t i = 1; i < t.shape().size(); ++i) fan *= t.shape()[i];
  rng.FillNormal(t.data(), 1.0f / std::sqrt(static_cast<float>(fan)));
  return t;
}

/// Batch-parameterized FP32 MLP.  Fixed weight seeds, so every bucket's
/// engine computes the same function; FP32 keeps the scalar tier of the
/// two-tier contract bit-exact end to end.
Result<Graph> BuildMlp(int64_t batch, uint64_t weight_seed = 100) {
  GraphBuilder b(DType::kFloat32, Layout::kRowMajor);
  NodeId x = b.Input("x", {batch, 16});
  NodeId y = b.Dense(x, b.Constant("w0", Fp32Weight({24, 16}, weight_seed)),
                     "fc0");
  y = b.BiasAdd(y, b.Constant("b0", Fp32Weight({24}, weight_seed + 1)));
  y = b.Activation(y, ActivationKind::kRelu);
  y = b.Dense(y, b.Constant("w1", Fp32Weight({8, 24}, weight_seed + 2)),
              "fc1");
  y = b.Softmax(y);
  b.MarkOutput(y);
  return b.Build();
}

Tensor MlpInput(int64_t rows, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat32, {rows, 16}, Layout::kRowMajor));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.7f);
  return t;
}

ModelSpec MlpSpec(const std::string& name, std::vector<int64_t> buckets,
                  uint64_t weight_seed = 100) {
  ModelSpec spec;
  spec.name = name;
  spec.build_graph = [weight_seed](int64_t batch) {
    return BuildMlp(batch, weight_seed);
  };
  auto policy = BucketPolicy::Create(std::move(buckets));
  BOLT_CHECK(policy.ok());
  spec.buckets = std::move(policy).value();
  return spec;
}

Request MakeRequest(const std::string& model, int64_t rows,
                    uint64_t seed = 7) {
  Request r;
  r.model = model;
  r.input = MlpInput(rows, seed);
  return r;
}

int64_t BatchRows(const std::vector<Request>& batch) {
  int64_t rows = 0;
  for (const Request& r : batch) rows += r.rows();
  return rows;
}

// ---------------------------------------------------------------------
// BucketPolicy
// ---------------------------------------------------------------------

TEST(BucketPolicyTest, RoundUpPicksSmallestCoveringBucket) {
  auto p = BucketPolicy::Create({8, 1, 4, 4});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->buckets(), (std::vector<int64_t>{1, 4, 8}));
  EXPECT_EQ(p->max_bucket(), 8);
  EXPECT_EQ(p->RoundUp(1).value_or(-1), 1);
  EXPECT_EQ(p->RoundUp(2).value_or(-1), 4);
  EXPECT_EQ(p->RoundUp(4).value_or(-1), 4);
  EXPECT_EQ(p->RoundUp(5).value_or(-1), 8);
  EXPECT_FALSE(p->RoundUp(9).has_value());
  EXPECT_FALSE(p->RoundUp(0).has_value());
}

TEST(BucketPolicyTest, CreateRejectsEmptyAndNonPositiveSets) {
  EXPECT_FALSE(BucketPolicy::Create({}).ok());
  EXPECT_FALSE(BucketPolicy::Create({4, 0}).ok());
  EXPECT_FALSE(BucketPolicy::Create({-1}).ok());
}

TEST(BucketPolicyTest, FromTunedGemmRoundsOntoTunedBatchSizes) {
  cpukernels::ClearTunedBlocks();
  cpukernels::BlockConfig block;  // defaults validate
  ASSERT_TRUE(block.Validate().ok());
  ASSERT_TRUE(cpukernels::RegisterTunedBlock(
      cpukernels::TunedKind::kGemm, 4, 24, 16, block));
  ASSERT_TRUE(cpukernels::RegisterTunedBlock(
      cpukernels::TunedKind::kGemm, 8, 24, 16, block));

  auto tuned = BucketPolicy::FromTunedGemm(24, 16, {1});
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ(tuned->buckets(), (std::vector<int64_t>{4, 8}));

  auto fallback = BucketPolicy::FromTunedGemm(999, 999, {1, 2});
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->buckets(), (std::vector<int64_t>{1, 2}));
  cpukernels::ClearTunedBlocks();
}

// ---------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------

constexpr int64_t kNoWait = 0;

int64_t CapEight(const std::string&) { return 8; }

TEST(RequestQueueTest, CoalescesSameModelRunsInFifoOrder) {
  RequestQueue q(16);
  for (auto [model, rows] :
       std::vector<std::pair<std::string, int64_t>>{
           {"a", 2}, {"a", 2}, {"b", 1}, {"a", 4}}) {
    Request r = MakeRequest(model, rows);
    ASSERT_TRUE(q.Push(r));
  }
  std::vector<Request> batch = q.NextBatch(CapEight, kNoWait);
  ASSERT_EQ(batch.size(), 3u);
  for (const Request& r : batch) EXPECT_EQ(r.model, "a");
  EXPECT_EQ(BatchRows(batch), 8);
  EXPECT_EQ(q.size(), 1u);  // "b" remains

  batch = q.NextBatch(CapEight, kNoWait);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].model, "b");
}

TEST(RequestQueueTest, NeverSplitsARequestAcrossBatches) {
  RequestQueue q(16);
  Request a = MakeRequest("m", 3), b = MakeRequest("m", 3);
  ASSERT_TRUE(q.Push(a));
  ASSERT_TRUE(q.Push(b));
  const auto cap4 = [](const std::string&) -> int64_t { return 4; };
  std::vector<Request> first = q.NextBatch(cap4, kNoWait);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].rows(), 3);
  std::vector<Request> second = q.NextBatch(cap4, kNoWait);
  ASSERT_EQ(second.size(), 1u);
}

TEST(RequestQueueTest, OversizedFrontRequestIsTakenAlone) {
  RequestQueue q(16);
  Request r = MakeRequest("m", 5);
  ASSERT_TRUE(q.Push(r));
  const auto cap2 = [](const std::string&) -> int64_t { return 2; };
  std::vector<Request> batch = q.NextBatch(cap2, kNoWait);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].rows(), 5);
}

TEST(RequestQueueTest, DeadlineFlushesPartialBatch) {
  bolt::testing::FakeClock clock(/*start_us=*/0.0, /*auto_advance=*/true);
  RequestQueue q(16, &clock);
  Request r = MakeRequest("m", 1);
  ASSERT_TRUE(q.Push(r));
  std::vector<Request> batch = q.NextBatch(CapEight, /*max_wait_us=*/20000);
  ASSERT_EQ(batch.size(), 1u);
  // Flushed exactly at the straggler deadline (enqueue + max_wait), not
  // hung waiting for a full bucket: auto-advance jumped the fake clock
  // to the moment the dispatch decision fired.
  EXPECT_EQ(clock.NowUs(), 20000.0);
}

TEST(RequestQueueTest, FullBucketExecutesBeforeDeadline) {
  bolt::testing::FakeClock clock;
  RequestQueue q(16, &clock);
  Request first = MakeRequest("m", 1), second = MakeRequest("m", 1);
  ASSERT_TRUE(q.Push(first));
  ASSERT_TRUE(q.Push(second));
  const auto cap2 = [](const std::string&) -> int64_t { return 2; };
  // Deadline far out: return must be triggered by the bucket filling,
  // without consulting the clock at all (it never advances).
  std::vector<Request> batch =
      q.NextBatch(cap2, /*max_wait_us=*/60 * 1000 * 1000);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(clock.NowUs(), 0.0);
}

TEST(RequestQueueTest, StragglerWaitUsesFrontDeadlineAfterCoalescing) {
  // Pin the deadline-latch semantics: the straggler wait runs out at
  // front.enqueue + max_wait even when a later same-model arrival
  // coalesces into the batch mid-wait.  If NextBatch wrongly re-derived
  // the deadline from the newest arrival, the flush would move to
  // t=1600 and the consumer would hang at t=1000 (caught by the escape
  // hatch below).
  bolt::testing::FakeClock clock;
  RequestQueue q(16, &clock);
  Request front = MakeRequest("m", 1);
  ASSERT_TRUE(q.Push(front));  // enqueued at t=0, deadline t=1000

  auto consumer = std::async(std::launch::async, [&q] {
    return q.NextBatch(CapEight, /*max_wait_us=*/1000);
  });
  clock.Advance(600);
  Request straggler = MakeRequest("m", 1);
  ASSERT_TRUE(q.Push(straggler));  // enqueued at t=600, coalesces
  clock.Advance(400);              // t=1000: the *front* deadline fires

  // Escape hatch only — the flush decision is asserted via the fake
  // clock, never wall time.
  if (consumer.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    q.Shutdown();  // unblock the consumer so the test fails, not hangs
    FAIL() << "NextBatch did not flush at the front request's deadline";
  }
  std::vector<Request> batch = consumer.get();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(BatchRows(batch), 2);
  EXPECT_EQ(clock.NowUs(), 1000.0);
}

TEST(RequestQueueTest, ShutdownDrainsThenReturnsEmpty) {
  RequestQueue q(16);
  Request a = MakeRequest("m", 1), b = MakeRequest("m", 1);
  ASSERT_TRUE(q.Push(a));
  ASSERT_TRUE(q.Push(b));
  q.Shutdown();
  Request late = MakeRequest("m", 1);
  EXPECT_FALSE(q.Push(late));
  EXPECT_FALSE(q.TryPush(late));
  std::vector<Request> batch = q.NextBatch(CapEight, kNoWait);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(q.NextBatch(CapEight, kNoWait).empty());
}

TEST(RequestQueueTest, TryPushShedsWhenFull) {
  RequestQueue q(2);
  Request a = MakeRequest("m", 1), b = MakeRequest("m", 1),
          c = MakeRequest("m", 1);
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  EXPECT_FALSE(q.TryPush(c));
  EXPECT_EQ(q.size(), 2u);
}

// ---------------------------------------------------------------------
// EngineRegistry
// ---------------------------------------------------------------------

EngineRegistry::CompileFn CountingMlpCompile(std::atomic<int>* compiles,
                                             int sleep_ms = 0) {
  return [compiles, sleep_ms](int64_t batch) -> Result<Engine> {
    compiles->fetch_add(1);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    Result<Graph> g = BuildMlp(batch);
    if (!g.ok()) return g.status();
    return Engine::Compile(*g, CompileOptions{});
  };
}

TEST(EngineRegistryTest, EvictsLeastRecentlyUsedBeyondCapacity) {
  EngineRegistry reg(2);
  std::atomic<int> compiles{0};
  const auto compile = CountingMlpCompile(&compiles);

  ASSERT_TRUE(reg.GetOrCompile("a", 1, compile).ok());
  ASSERT_TRUE(reg.GetOrCompile("b", 1, compile).ok());
  ASSERT_TRUE(reg.GetOrCompile("a", 1, compile).ok());  // touch a
  ASSERT_TRUE(reg.GetOrCompile("c", 1, compile).ok());  // evicts b
  EXPECT_EQ(compiles.load(), 3);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.KeysByRecency(),
            (std::vector<std::string>{"c@1", "a@1"}));

  // b was evicted: asking again recompiles.
  ASSERT_TRUE(reg.GetOrCompile("b", 1, compile).ok());
  EXPECT_EQ(compiles.load(), 4);
}

TEST(EngineRegistryTest, SingleFlightSharesOneCompilation) {
  EngineRegistry reg(4);
  std::atomic<int> compiles{0};
  const auto compile = CountingMlpCompile(&compiles, /*sleep_ms=*/25);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Engine>> engines(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto e = reg.GetOrCompile("m", 4, compile);
      ASSERT_TRUE(e.ok()) << e.status().ToString();
      engines[static_cast<size_t>(t)] = *e;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(compiles.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(engines[static_cast<size_t>(t)].get(), engines[0].get());
  }
}

TEST(EngineRegistryTest, FailedCompilationIsNotCached) {
  EngineRegistry reg(4);
  std::atomic<int> calls{0};
  const auto failing = [&calls](int64_t) -> Result<Engine> {
    calls.fetch_add(1);
    return Status::Internal("boom");
  };
  EXPECT_FALSE(reg.GetOrCompile("m", 1, failing).ok());
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.GetOrCompile("m", 1, failing).ok());
  EXPECT_EQ(calls.load(), 2);  // retried, not served from cache

  std::atomic<int> compiles{0};
  ASSERT_TRUE(reg.GetOrCompile("m", 1, CountingMlpCompile(&compiles)).ok());
  EXPECT_EQ(compiles.load(), 1);
}

// ---------------------------------------------------------------------
// Engine::RunBatch
// ---------------------------------------------------------------------

TEST(EngineRunBatchTest, ValidatesRequests) {
  Result<Graph> g = BuildMlp(4);
  ASSERT_TRUE(g.ok());
  auto engine = Engine::Compile(*g, CompileOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  EXPECT_FALSE(engine->RunBatch({}).ok());
  // Tail-shape mismatch.
  EXPECT_FALSE(engine->RunBatch({MlpInput(1, 1).Cast(DType::kFloat16)}).ok());
  Tensor wrong_tail(TensorDesc(DType::kFloat32, {1, 15}, Layout::kRowMajor));
  EXPECT_FALSE(engine->RunBatch({wrong_tail}).ok());
  // Rows exceed the compiled batch.
  EXPECT_FALSE(engine->RunBatch({MlpInput(3, 1), MlpInput(2, 2)}).ok());
  // Exactly full is fine.
  auto full = engine->RunBatch({MlpInput(3, 1), MlpInput(1, 2)});
  EXPECT_TRUE(full.ok()) << full.status().ToString();
}

TEST(EngineRunBatchTest, PaddedBatchMatchesPerRequestBitForBit) {
  Result<Graph> g = BuildMlp(8);
  ASSERT_TRUE(g.ok());
  auto engine = Engine::Compile(*g, CompileOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::vector<Tensor> requests = {MlpInput(1, 11), MlpInput(2, 12),
                                        MlpInput(3, 13)};
  auto batched = engine->RunBatch(requests);  // 6 rows, 2 padded
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    auto alone = engine->RunBatch({requests[i]});
    ASSERT_TRUE(alone.ok());
    ASSERT_EQ((*batched)[i].size(), (*alone)[0].size());
    for (size_t o = 0; o < (*alone)[0].size(); ++o) {
      // Same engine, same tier: padding and demux must be invisible.
      EXPECT_EQ((*batched)[i][o].MaxAbsDiff((*alone)[0][o]), 0.0f)
          << "request " << i << " output " << o;
      EXPECT_EQ((*batched)[i][o].shape()[0], requests[i].shape()[0]);
    }
  }
}

// ---------------------------------------------------------------------
// Server end-to-end
// ---------------------------------------------------------------------

ServerOptions DeterministicOptions() {
  ServerOptions o;
  o.batcher.max_wait_us = 0;  // RunOnce flushes immediately
  return o;
}

TEST(ServerTest, RegisterModelValidatesSpec) {
  Server server(DeterministicOptions());
  EXPECT_FALSE(server.RegisterModel(ModelSpec{}).ok());  // empty name

  ModelSpec no_graph = MlpSpec("m", {4});
  no_graph.build_graph = nullptr;
  EXPECT_FALSE(server.RegisterModel(std::move(no_graph)).ok());

  // Leading dim of the built graph must equal the bucket batch size.
  ModelSpec wrong_batch = MlpSpec("m", {4});
  wrong_batch.build_graph = [](int64_t) { return BuildMlp(2); };
  EXPECT_FALSE(server.RegisterModel(std::move(wrong_batch)).ok());

  ASSERT_TRUE(server.RegisterModel(MlpSpec("m", {4})).ok());
  EXPECT_FALSE(server.RegisterModel(MlpSpec("m", {8})).ok());  // duplicate
  EXPECT_EQ(server.models().at("m").input_name, "x");
}

TEST(ServerTest, SubmitValidatesRequests) {
  Server server(DeterministicOptions());
  ASSERT_TRUE(server.RegisterModel(MlpSpec("mlp", {1, 4})).ok());

  EXPECT_FALSE(server.Submit("nope", MlpInput(1, 1)).ok());
  Tensor bad_tail(TensorDesc(DType::kFloat32, {1, 15}, Layout::kRowMajor));
  EXPECT_FALSE(server.Submit("mlp", bad_tail).ok());
  EXPECT_FALSE(server.Submit("mlp", MlpInput(1, 1).Cast(DType::kFloat16)).ok());
  EXPECT_FALSE(server.Submit("mlp", MlpInput(5, 1)).ok());  // > max bucket
  EXPECT_TRUE(server.Submit("mlp", MlpInput(4, 1)).ok());
}

TEST(ServerTest, CoalescedPaddedBatchMatchesPerRequestExecution) {
  Server server(DeterministicOptions());
  ASSERT_TRUE(server.RegisterModel(MlpSpec("mlp", {1, 2, 4, 8})).ok());

  const std::vector<int64_t> request_rows = {1, 2, 3};
  std::vector<Tensor> inputs;
  std::vector<Server::ResponseFuture> futures;
  for (size_t i = 0; i < request_rows.size(); ++i) {
    inputs.push_back(MlpInput(request_rows[i], 40 + i));
    auto f = server.Submit("mlp", inputs.back());
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(*f));
  }

  // One deterministic batcher step must serve all three requests: 6 rows
  // round up to the 8-bucket.
  EXPECT_EQ(server.batcher().RunOnce(), 6);
  EXPECT_EQ(server.registry().KeysByRecency(),
            (std::vector<std::string>{"mlp@8"}));

  // The bucket engine, fetched from the cache (hit, no recompile).
  auto engine = server.registry().GetOrCompile(
      "mlp", 8, [](int64_t) -> Result<Engine> {
        return Status::Internal("must be cached");
      });
  ASSERT_TRUE(engine.ok());

  for (size_t i = 0; i < futures.size(); ++i) {
    Result<std::vector<Tensor>> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto alone = (*engine)->RunBatch({inputs[i]});
    ASSERT_TRUE(alone.ok());
    ASSERT_EQ(got->size(), (*alone)[0].size());
    for (size_t o = 0; o < got->size(); ++o) {
      EXPECT_EQ((*got)[o].MaxAbsDiff((*alone)[0][o]), 0.0f)
          << "request " << i << " output " << o;
    }
  }
}

TEST(ServerTest, ServedResultsMatchReferenceInterpreter) {
  Server server(DeterministicOptions());
  ASSERT_TRUE(server.RegisterModel(MlpSpec("mlp", {1, 2, 4, 8})).ok());

  const std::vector<int64_t> request_rows = {2, 3};
  std::vector<Tensor> inputs;
  std::vector<Server::ResponseFuture> futures;
  for (size_t i = 0; i < request_rows.size(); ++i) {
    inputs.push_back(MlpInput(request_rows[i], 50 + i));
    auto f = server.Submit("mlp", inputs.back());
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  EXPECT_EQ(server.batcher().RunOnce(), 5);

  // Two-tier contract vs the naive per-request oracle: bit-exact on the
  // scalar tier, ULP-bounded under AVX2.
  const difftest::Tolerance tol = difftest::ToleranceFor(
      cpukernels::ResolveCpuIsa(cpukernels::CpuIsa::kAuto),
      DType::kFloat32);
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<std::vector<Tensor>> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<Graph> per_request = BuildMlp(request_rows[i]);
    ASSERT_TRUE(per_request.ok());
    auto ref = RefExecutor(*per_request).Run({{"x", inputs[i]}});
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ASSERT_EQ(got->size(), ref->size());
    for (size_t o = 0; o < got->size(); ++o) {
      SCOPED_TRACE(StrCat("request ", i, " output ", o));
      EXPECT_TRUE(
          difftest::CheckDiff("serve", (*got)[o], (*ref)[o], tol));
    }
  }
}

TEST(ServerTest, MultiTenantServingWithLruEviction) {
  ServerOptions options = DeterministicOptions();
  options.engine_cache_capacity = 1;  // force churn between tenants
  Server server(options);
  ASSERT_TRUE(
      server.RegisterModel(MlpSpec("alpha", {4}, /*weight_seed=*/100)).ok());
  ASSERT_TRUE(
      server.RegisterModel(MlpSpec("beta", {4}, /*weight_seed=*/200)).ok());

  metrics::Counter& evictions =
      metrics::Registry::Global().GetCounter("serve.engine.evict");
  const int64_t evictions_before = evictions.value();

  std::vector<Server::ResponseFuture> futures;
  for (int round = 0; round < 2; ++round) {
    for (const std::string model : {"alpha", "beta"}) {
      auto f = server.Submit(model, MlpInput(2, 60 + round));
      ASSERT_TRUE(f.ok());
      futures.push_back(std::move(*f));
      EXPECT_EQ(server.batcher().RunOnce(), 2);
    }
  }
  EXPECT_EQ(server.registry().size(), 1u);
  EXPECT_GE(evictions.value() - evictions_before, 3);

  // Tenants stay isolated: different weights, different outputs.
  std::vector<Result<std::vector<Tensor>>> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  EXPECT_GT(
      (*results[0])[0].MaxAbsDiff((*results[1])[0]), 0.0f);
}

// The tsan target: concurrent clients, multiple batcher workers, one
// shared engine cache.
TEST(ServerTest, ConcurrentClientsReceiveCorrectResults) {
  ServerOptions options;
  options.batcher.max_wait_us = 500;
  options.batcher.num_workers = 2;
  Server server(options);
  ASSERT_TRUE(server.RegisterModel(MlpSpec("mlp", {1, 2, 4, 8})).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int64_t rows = 1 + (c + i) % 3;
        const uint64_t seed = 1000 + static_cast<uint64_t>(c * 100 + i);
        Tensor input = MlpInput(rows, seed);
        auto f = server.Submit("mlp", input);
        if (!f.ok()) {
          failures.fetch_add(1);
          continue;
        }
        Result<std::vector<Tensor>> got = f->get();
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        Result<Graph> g = BuildMlp(rows);
        auto ref = RefExecutor(*g).Run({{"x", input}});
        const difftest::Tolerance tol = difftest::ToleranceFor(
            cpukernels::ResolveCpuIsa(cpukernels::CpuIsa::kAuto),
            DType::kFloat32);
        if (!ref.ok() ||
            !difftest::CheckDiff("serve", (*got)[0], (*ref)[0], tol)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);

  // Every submission was answered through a batched execution.
  metrics::Counter& batches =
      metrics::Registry::Global().GetCounter("serve.batch.count");
  EXPECT_GT(batches.value(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace bolt
