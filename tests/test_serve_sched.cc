// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0
//
// Deterministic tests for the SLO-aware fair scheduler
// (docs/SERVING.md): the FakeClock harness itself, DRR rotation order
// and the bounded-deficit fairness property, weighted shares, the
// urgency bypass, slack-aware early dispatch, admission-control
// accept/reject matrices, typed rejections, the engine prewarmer
// (ladder walked exactly once, throwing compiles never poison the
// single-flight slot), and a multi-tenant multi-worker stress run (the
// tsan target).  No assertion in this file depends on wall-clock time;
// every dispatch decision is driven through tests/testing/fake_clock.h.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bolt/engine.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "serve/bucketing.h"
#include "serve/prewarm.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "testing/fake_clock.h"

namespace bolt {
namespace serve {
namespace {

using bolt::testing::FakeClock;

int64_t CounterValue(const char* name) {
  return metrics::Registry::Global().GetCounter(name).value();
}

/// A rows-row request for `model`; the tensor payload is never executed
/// in the scheduler-only tests, only its leading dimension matters.
Request SchedRequest(const std::string& model, int64_t rows,
                     double deadline_us =
                         std::numeric_limits<double>::infinity()) {
  Request r;
  r.model = model;
  r.input = Tensor(TensorDesc(DType::kFloat32, {rows, 4},
                              Layout::kRowMajor));
  r.deadline_us = deadline_us;
  return r;
}

int64_t BatchRows(const std::vector<Request>& batch) {
  int64_t rows = 0;
  for (const Request& r : batch) rows += r.rows();
  return rows;
}

constexpr int64_t kNoWait = 0;

int64_t CapFour(const std::string&) { return 4; }
int64_t CapEight(const std::string&) { return 8; }

// ---------------------------------------------------------------------
// FakeClock
// ---------------------------------------------------------------------

TEST(FakeClockTest, AutoAdvanceJumpsToTheDeadline) {
  FakeClock clock(/*start_us=*/100.0, /*auto_advance=*/true);
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_FALSE(clock.WaitUntil(cv, lock, 600.0, [] { return false; }));
  EXPECT_EQ(clock.NowUs(), 600.0);
  // A satisfied predicate returns without moving time.
  EXPECT_TRUE(clock.WaitUntil(cv, lock, 900.0, [] { return true; }));
  EXPECT_EQ(clock.NowUs(), 600.0);
}

TEST(FakeClockTest, ManualAdvanceWakesABlockedWaiter) {
  FakeClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool flag = false;

  auto waiter = std::async(std::launch::async, [&] {
    std::unique_lock<std::mutex> lock(mu);
    return clock.WaitUntil(cv, lock, 1000.0, [&] { return flag; });
  });
  clock.Advance(400.0);  // below the deadline: waiter stays parked
  {
    std::lock_guard<std::mutex> g(mu);
    flag = true;
  }
  cv.notify_all();
  EXPECT_TRUE(waiter.get());  // woke via the predicate, not the deadline

  auto timed_out = std::async(std::launch::async, [&] {
    std::unique_lock<std::mutex> lock(mu);
    return clock.WaitUntil(cv, lock, 1000.0, [] { return false; });
  });
  clock.Advance(700.0);  // 400 + 700 >= 1000: deadline fires
  EXPECT_FALSE(timed_out.get());
  EXPECT_EQ(clock.NowUs(), 1100.0);
}

// ---------------------------------------------------------------------
// Typed rejections
// ---------------------------------------------------------------------

TEST(RejectionTest, MakeRejectedRoundTripsThroughGetRejectReason) {
  const Status late =
      MakeRejected(RejectReason::kPredictedLateness, "too slow");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(GetRejectReason(late), RejectReason::kPredictedLateness);

  const Status full = MakeRejected(RejectReason::kQueueFull, "no room");
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(GetRejectReason(full), RejectReason::kQueueFull);

  // Non-rejection errors do not parse as rejections.
  EXPECT_EQ(GetRejectReason(Status::Ok()), std::nullopt);
  EXPECT_EQ(GetRejectReason(Status::ResourceExhausted("plain full")),
            std::nullopt);
  EXPECT_EQ(GetRejectReason(Status::DeadlineExceeded("plain late")),
            std::nullopt);
}

// ---------------------------------------------------------------------
// Deficit round-robin
// ---------------------------------------------------------------------

FairScheduler MakeScheduler(FakeClock* clock, size_t capacity = 256) {
  SchedulerOptions o;
  o.capacity = capacity;
  o.clock = clock;
  return FairScheduler(o);
}

TEST(FairSchedulerTest, EqualWeightsRotateRoundRobinUnderSaturation) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock);
  for (const char* m : {"a", "b", "c"}) sched.RegisterModel(m, 1.0, 4);
  for (int round = 0; round < 5; ++round) {
    for (const char* m : {"a", "b", "c"}) {
      Request r = SchedRequest(m, 4);
      ASSERT_TRUE(sched.Push(r));
    }
  }

  std::vector<std::string> order;
  for (int i = 0; i < 15; ++i) {
    std::vector<Request> batch = sched.NextBatch(CapFour, kNoWait);
    ASSERT_EQ(batch.size(), 1u);
    order.push_back(batch[0].model);
  }
  const std::vector<std::string> cycle = {"a", "b", "c"};
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)],
              cycle[static_cast<size_t>(i % 3)])
        << "dispatch " << i;
  }
  EXPECT_EQ(sched.size(), 0u);
}

TEST(FairSchedulerTest, WeightTwoTenantGetsTwoThirdsOfRows) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock);
  sched.RegisterModel("heavy", 2.0, 4);
  sched.RegisterModel("light", 1.0, 4);
  for (int i = 0; i < 20; ++i) {
    Request r = SchedRequest("heavy", 4);
    ASSERT_TRUE(sched.Push(r));
  }
  for (int i = 0; i < 10; ++i) {
    Request r = SchedRequest("light", 4);
    ASSERT_TRUE(sched.Push(r));
  }

  // The DRR bound: over ANY dispatch prefix while both stay backlogged,
  // no tenant exceeds its weight share of served rows by more than one
  // quantum plus one max bucket (8 rows here).
  constexpr double kBoundRows = 8.0;
  int64_t heavy_rows = 0, light_rows = 0;
  for (int i = 0; i < 30; ++i) {
    std::vector<Request> batch = sched.NextBatch(CapFour, kNoWait);
    ASSERT_FALSE(batch.empty());
    (batch[0].model == "heavy" ? heavy_rows : light_rows) +=
        BatchRows(batch);
    const double total = static_cast<double>(heavy_rows + light_rows);
    EXPECT_LE(static_cast<double>(heavy_rows),
              total * (2.0 / 3.0) + kBoundRows)
        << "after dispatch " << i;
    EXPECT_LE(static_cast<double>(light_rows),
              total * (1.0 / 3.0) + kBoundRows)
        << "after dispatch " << i;
  }
  EXPECT_EQ(heavy_rows, 80);
  EXPECT_EQ(light_rows, 40);
}

TEST(FairSchedulerTest, HotTenantCannotStarveABackgroundTenant) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock);
  sched.RegisterModel("hot", 1.0, 4);
  sched.RegisterModel("bg", 1.0, 4);
  // The hot tenant floods first; the background tenant trickles in one
  // small run.
  for (int i = 0; i < 20; ++i) {
    Request r = SchedRequest("hot", 1);
    ASSERT_TRUE(sched.Push(r));
  }
  for (int i = 0; i < 3; ++i) {
    Request r = SchedRequest("bg", 1);
    ASSERT_TRUE(sched.Push(r));
  }

  // The background tenant is served on the very next rotation turn, not
  // after the hot backlog drains.
  std::vector<Request> first = sched.NextBatch(CapFour, kNoWait);
  EXPECT_EQ(first[0].model, "hot");
  std::vector<Request> second = sched.NextBatch(CapFour, kNoWait);
  EXPECT_EQ(second[0].model, "bg");
  EXPECT_EQ(BatchRows(second), 3);
}

TEST(FairSchedulerTest, ShutdownDrainsThenReturnsEmpty) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock);
  Request a = SchedRequest("m", 1), b = SchedRequest("m", 1);
  ASSERT_TRUE(sched.Push(a));
  ASSERT_TRUE(sched.Push(b));
  sched.Shutdown();
  Request late = SchedRequest("m", 1);
  EXPECT_FALSE(sched.Push(late));
  EXPECT_FALSE(sched.TryPush(late));
  EXPECT_EQ(sched.NextBatch(CapEight, kNoWait).size(), 2u);
  EXPECT_TRUE(sched.NextBatch(CapEight, kNoWait).empty());
}

TEST(FairSchedulerTest, TryPushShedsWhenFull) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock, /*capacity=*/2);
  Request a = SchedRequest("m", 1), b = SchedRequest("n", 1),
          c = SchedRequest("m", 1);
  EXPECT_TRUE(sched.TryPush(a));
  EXPECT_TRUE(sched.TryPush(b));
  EXPECT_FALSE(sched.TryPush(c));
  EXPECT_EQ(sched.size(), 2u);
}

// ---------------------------------------------------------------------
// SLO-aware dispatch
// ---------------------------------------------------------------------

TEST(FairSchedulerTest, UrgentFrontDeadlineBypassesRotationOrder) {
  FakeClock clock;
  SchedulerOptions o;
  o.clock = &clock;
  o.exec_predictor = [](const std::string&, int64_t) {
    return std::optional<double>(100.0);
  };
  FairScheduler sched(o);
  sched.RegisterModel("a", 1.0, 4);
  sched.RegisterModel("b", 1.0, 4);

  Request relaxed = SchedRequest("a", 1);
  ASSERT_TRUE(sched.Push(relaxed));
  // b joined the rotation after a, but its front deadline (t=50) minus
  // the predicted exec (100us) leaves no slack at t=0.
  Request urgent = SchedRequest("b", 1, /*deadline_us=*/50.0);
  ASSERT_TRUE(sched.Push(urgent));

  const int64_t urgent_before = CounterValue("serve.sched.pick.urgent");
  std::vector<Request> batch = sched.NextBatch(CapFour, kNoWait);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].model, "b");
  EXPECT_EQ(CounterValue("serve.sched.pick.urgent") - urgent_before, 1);

  batch = sched.NextBatch(CapFour, kNoWait);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].model, "a");
}

TEST(FairSchedulerTest, SlackExhaustionFlushesBeforeTheStragglerWait) {
  FakeClock clock(/*start_us=*/0.0, /*auto_advance=*/true);
  SchedulerOptions o;
  o.clock = &clock;
  o.exec_predictor = [](const std::string&, int64_t) {
    return std::optional<double>(1000.0);
  };
  FairScheduler sched(o);
  sched.RegisterModel("m", 1.0, 8);

  // SLO deadline t=5000, predicted exec 1000us: the straggler wait must
  // give up at t=4000, far before the 20000us max-wait deadline.
  Request r = SchedRequest("m", 1, /*deadline_us=*/5000.0);
  ASSERT_TRUE(sched.Push(r));

  const int64_t slack_before = CounterValue("serve.sched.dispatch.slack");
  std::vector<Request> batch =
      sched.NextBatch(CapEight, /*max_wait_us=*/20000);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(clock.NowUs(), 4000.0);  // dispatched exactly at zero slack
  EXPECT_EQ(CounterValue("serve.sched.dispatch.slack") - slack_before, 1);
}

TEST(FairSchedulerTest, FullBucketStillDispatchesImmediately) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock);
  sched.RegisterModel("m", 1.0, 4);
  for (int i = 0; i < 4; ++i) {
    Request r = SchedRequest("m", 1);
    ASSERT_TRUE(sched.Push(r));
  }
  const int64_t full_before = CounterValue("serve.sched.dispatch.full");
  std::vector<Request> batch =
      sched.NextBatch(CapFour, /*max_wait_us=*/1000000);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(clock.NowUs(), 0.0);  // never consulted a wait
  EXPECT_EQ(CounterValue("serve.sched.dispatch.full") - full_before, 1);
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(FairSchedulerTest, AdmissionMatrixAcceptsAndRejectsOnPrediction) {
  FakeClock clock;
  SchedulerOptions o;
  o.clock = &clock;
  o.capacity = 64;
  o.exec_predictor = [](const std::string&, int64_t) {
    return std::optional<double>(1000.0);
  };
  FairScheduler sched(o);
  sched.RegisterModel("m", 1.0, 4);

  // Empty queue: only the predicted exec counts.
  EXPECT_TRUE(sched.Admit("m", 1, /*slo_us=*/2000.0).ok());
  Status late = sched.Admit("m", 1, /*slo_us=*/500.0);
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(GetRejectReason(late), RejectReason::kPredictedLateness);

  // Backlog of 8 rows = 2 full buckets at cap 4: predicted wait 2000us.
  for (int i = 0; i < 2; ++i) {
    Request r = SchedRequest("m", 4);
    ASSERT_TRUE(sched.Push(r));
  }
  EXPECT_EQ(sched.PredictedQueueWaitUs(), 2000.0);
  EXPECT_EQ(sched.QueuedRows("m"), 8);
  EXPECT_FALSE(sched.Admit("m", 1, /*slo_us=*/2500.0).ok());  // 3000 > 2500
  EXPECT_TRUE(sched.Admit("m", 1, /*slo_us=*/3500.0).ok());
}

TEST(FairSchedulerTest, AdmissionScalesWaitByDrainWorkers) {
  FakeClock clock;
  SchedulerOptions o;
  o.clock = &clock;
  o.drain_workers = 2;
  o.exec_predictor = [](const std::string&, int64_t) {
    return std::optional<double>(1000.0);
  };
  FairScheduler sched(o);
  sched.RegisterModel("m", 1.0, 4);
  for (int i = 0; i < 2; ++i) {
    Request r = SchedRequest("m", 4);
    ASSERT_TRUE(sched.Push(r));
  }
  // Two workers drain two predicted batches in one batch-time.
  EXPECT_EQ(sched.PredictedQueueWaitUs(), 1000.0);
}

TEST(FairSchedulerTest, AdmissionRejectsTypedQueueFull) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock, /*capacity=*/2);
  sched.RegisterModel("m", 1.0, 4);
  for (int i = 0; i < 2; ++i) {
    Request r = SchedRequest("m", 1);
    ASSERT_TRUE(sched.TryPush(r));
  }
  Status full = sched.Admit("m", 1, /*slo_us=*/1e9);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(GetRejectReason(full), RejectReason::kQueueFull);
}

TEST(FairSchedulerTest, AdmissionWithoutPredictorAcceptsWithinCapacity) {
  FakeClock clock;
  FairScheduler sched = MakeScheduler(&clock);
  sched.RegisterModel("m", 1.0, 4);
  // No measurement yet: admission cannot predict lateness, only a full
  // queue rejects.
  EXPECT_TRUE(sched.Admit("m", 4, /*slo_us=*/1.0).ok());
  EXPECT_EQ(sched.PredictedQueueWaitUs(), 0.0);
}

// ---------------------------------------------------------------------
// MLP helpers for the prewarmer / server-level tests
// ---------------------------------------------------------------------

Tensor Fp32Weight(std::vector<int64_t> shape, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat32, std::move(shape)));
  Rng rng(seed);
  int64_t fan = 1;
  for (size_t i = 1; i < t.shape().size(); ++i) fan *= t.shape()[i];
  rng.FillNormal(t.data(), 1.0f / std::sqrt(static_cast<float>(fan)));
  return t;
}

Result<Graph> BuildMlp(int64_t batch, uint64_t weight_seed = 100) {
  GraphBuilder b(DType::kFloat32, Layout::kRowMajor);
  NodeId x = b.Input("x", {batch, 16});
  NodeId y = b.Dense(x, b.Constant("w0", Fp32Weight({24, 16}, weight_seed)),
                     "fc0");
  y = b.BiasAdd(y, b.Constant("b0", Fp32Weight({24}, weight_seed + 1)));
  y = b.Activation(y, ActivationKind::kRelu);
  y = b.Dense(y, b.Constant("w1", Fp32Weight({8, 24}, weight_seed + 2)),
              "fc1");
  b.MarkOutput(y);
  return b.Build();
}

Tensor MlpInput(int64_t rows, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat32, {rows, 16}, Layout::kRowMajor));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.7f);
  return t;
}

ModelSpec MlpSpec(const std::string& name, std::vector<int64_t> buckets,
                  uint64_t weight_seed = 100) {
  ModelSpec spec;
  spec.name = name;
  spec.build_graph = [weight_seed](int64_t batch) {
    return BuildMlp(batch, weight_seed);
  };
  auto policy = BucketPolicy::Create(std::move(buckets));
  BOLT_CHECK(policy.ok());
  spec.buckets = std::move(policy).value();
  return spec;
}

// ---------------------------------------------------------------------
// EnginePrewarmer
// ---------------------------------------------------------------------

TEST(EnginePrewarmerTest, WalksTheBucketLadderExactlyOnce) {
  EngineRegistry registry(8);
  std::atomic<int> builds{0};
  ModelTable models;
  ModelSpec spec = MlpSpec("m", {1, 2, 4});
  spec.build_graph = [&builds](int64_t batch) {
    builds.fetch_add(1);
    return BuildMlp(batch);
  };
  models.emplace("m", std::move(spec));

  EnginePrewarmer prewarmer(&registry, &models);
  PrewarmStats first = prewarmer.WarmAll();
  EXPECT_EQ(first.compiled, 3);
  EXPECT_EQ(first.hits, 0);
  EXPECT_EQ(first.failed, 0);
  EXPECT_EQ(builds.load(), 3);  // one graph build per ladder rung
  for (int64_t bucket : {1, 2, 4}) {
    EXPECT_TRUE(registry.Contains("m", bucket)) << bucket;
  }

  // A second pass finds every rung cached: zero recompiles.
  PrewarmStats second = prewarmer.WarmAll();
  EXPECT_EQ(second.compiled, 0);
  EXPECT_EQ(second.hits, 3);
  EXPECT_EQ(builds.load(), 3);
}

TEST(EnginePrewarmerTest, ThrowingCompileIsSkippedAndRetriedNextPass) {
  EngineRegistry registry(8);
  std::atomic<int> builds{0};
  std::atomic<bool> should_throw{true};
  ModelTable models;
  ModelSpec spec = MlpSpec("m", {1, 2});
  spec.build_graph = [&](int64_t batch) -> Result<Graph> {
    builds.fetch_add(1);
    // The first build (bucket 1) throws; the registry must convert the
    // exception into an error without poisoning the single-flight slot.
    if (should_throw.exchange(false)) {
      throw std::runtime_error("simulated compiler crash");
    }
    return BuildMlp(batch);
  };
  models.emplace("m", std::move(spec));

  EnginePrewarmer prewarmer(&registry, &models);
  PrewarmStats first = prewarmer.WarmAll();
  EXPECT_EQ(first.failed, 1);
  EXPECT_EQ(first.compiled, 1);  // bucket 2 still compiled
  EXPECT_FALSE(registry.Contains("m", 1));

  PrewarmStats second = prewarmer.WarmAll();
  EXPECT_EQ(second.failed, 0);
  EXPECT_EQ(second.compiled, 1);  // bucket 1 retried and cached
  EXPECT_EQ(second.hits, 1);
  EXPECT_TRUE(registry.Contains("m", 1));
}

TEST(EngineRegistryTest, ConcurrentThrowingCompilesDoNotWedgeTheSlot) {
  EngineRegistry registry(4);
  std::atomic<int> calls{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto e = registry.GetOrCompile(
          "m", 1, [&calls](int64_t) -> Result<Engine> {
            calls.fetch_add(1);
            throw std::runtime_error("boom");
          });
      if (!e.ok()) errors.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Every caller got an error (none hung on a poisoned flight), and the
  // failure was not cached.
  EXPECT_EQ(errors.load(), kThreads);
  EXPECT_EQ(registry.size(), 0u);

  // The slot still works: a healthy compile succeeds afterwards.
  auto ok = registry.GetOrCompile("m", 1, [](int64_t batch) {
    Result<Graph> g = BuildMlp(batch);
    if (!g.ok()) return Result<Engine>(g.status());
    return Engine::Compile(*g, CompileOptions{});
  });
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(EngineRegistryTest, ExecEwmaSeedsSmoothsAndSurvivesEviction) {
  EngineRegistry registry(1);
  EXPECT_EQ(registry.PredictedExecUs("m", 4), std::nullopt);
  registry.RecordExecUs("m", 4, 1000.0);
  EXPECT_EQ(registry.PredictedExecUs("m", 4), 1000.0);  // seeded
  registry.RecordExecUs("m", 4, 2000.0);
  // ewma += 0.25 * (2000 - 1000)
  EXPECT_EQ(registry.PredictedExecUs("m", 4), 1250.0);

  // Nearest-bucket fallback by |log2 ratio|: 8 is closer to a recorded
  // 4 than to a recorded 32.
  registry.RecordExecUs("m", 32, 9000.0);
  EXPECT_EQ(registry.PredictedExecUs("m", 8), 1250.0);
  EXPECT_EQ(registry.PredictedExecUs("m", 16), 9000.0);

  // Garbage samples are dropped.
  registry.RecordExecUs("m", 4, -5.0);
  EXPECT_EQ(registry.PredictedExecUs("m", 4), 1250.0);

  // The EWMA deliberately outlives cache entries (capacity 1 here): the
  // scheduler needs the estimate precisely when the engine went cold.
  auto compile = [](int64_t batch) {
    Result<Graph> g = BuildMlp(batch);
    if (!g.ok()) return Result<Engine>(g.status());
    return Engine::Compile(*g, CompileOptions{});
  };
  ASSERT_TRUE(registry.GetOrCompile("m", 4, compile).ok());
  ASSERT_TRUE(registry.GetOrCompile("other", 4, compile).ok());  // evicts
  EXPECT_FALSE(registry.Contains("m", 4));
  EXPECT_EQ(registry.PredictedExecUs("m", 4), 1250.0);
}

// ---------------------------------------------------------------------
// Server-level SLO admission
// ---------------------------------------------------------------------

TEST(ServerSloTest, SubmitRejectsPredictedLatenessAndServesFeasible) {
  ServerOptions options;
  options.batcher.max_wait_us = 0;
  Server server(options);
  ASSERT_TRUE(server.RegisterModel(MlpSpec("mlp", {1, 2, 4})).ok());

  // Teach the predictor that this model takes 50ms per batch.
  server.registry().RecordExecUs("mlp", 1, 50000.0);

  auto rejected = server.Submit("mlp", MlpInput(1, 1), /*slo_us=*/100);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(GetRejectReason(rejected.status()),
            RejectReason::kPredictedLateness);

  // A feasible SLO is admitted, stamped with a deadline, and served.
  auto admitted =
      server.Submit("mlp", MlpInput(1, 1), /*slo_us=*/60 * 1000 * 1000);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(server.batcher().RunOnce(), 1);
  auto result = admitted->get();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ServerSloTest, ModelDefaultSloAppliesWhenSubmitDoesNotOverride) {
  ServerOptions options;
  options.batcher.max_wait_us = 0;
  Server server(options);
  ModelSpec spec = MlpSpec("mlp", {1, 2});
  spec.slo_us = 100;  // every request inherits a 100us SLO
  ASSERT_TRUE(server.RegisterModel(std::move(spec)).ok());
  server.registry().RecordExecUs("mlp", 1, 50000.0);

  auto rejected = server.Submit("mlp", MlpInput(1, 1));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(GetRejectReason(rejected.status()),
            RejectReason::kPredictedLateness);

  // An explicit 0 opts back out of the SLO path entirely.
  auto no_slo = server.Submit("mlp", MlpInput(1, 1), /*slo_us=*/0);
  ASSERT_TRUE(no_slo.ok()) << no_slo.status().ToString();
  EXPECT_EQ(server.batcher().RunOnce(), 1);
  EXPECT_TRUE(no_slo->get().ok());
}

TEST(ServerSloTest, RegisterModelValidatesWeightAndSlo) {
  Server server;
  ModelSpec bad_weight = MlpSpec("w", {2});
  bad_weight.weight = 0.0;
  EXPECT_FALSE(server.RegisterModel(std::move(bad_weight)).ok());
  ModelSpec bad_slo = MlpSpec("s", {2});
  bad_slo.slo_us = -1;
  EXPECT_FALSE(server.RegisterModel(std::move(bad_slo)).ok());
}

TEST(ServerSloTest, PrewarmCompilesEveryRegisteredLadder) {
  Server server;
  ASSERT_TRUE(server.RegisterModel(MlpSpec("a", {1, 2})).ok());
  ASSERT_TRUE(server.RegisterModel(MlpSpec("b", {4}, 200)).ok());
  PrewarmStats stats = server.Prewarm();
  EXPECT_EQ(stats.compiled, 3);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_TRUE(server.registry().Contains("a", 1));
  EXPECT_TRUE(server.registry().Contains("a", 2));
  EXPECT_TRUE(server.registry().Contains("b", 4));
}

// ---------------------------------------------------------------------
// Multi-tenant stress (the tsan target): 4 tenants, 8 clients, 2
// workers, no sleeps, no wall-clock assertions.
// ---------------------------------------------------------------------

TEST(FairSchedulerStressTest, FourTenantsEightClientsTwoWorkers) {
  ServerOptions options;
  options.batcher.max_wait_us = 200;
  options.batcher.num_workers = 2;
  Server server(options);
  const std::vector<std::string> tenants = {"t0", "t1", "t2", "t3"};
  for (size_t i = 0; i < tenants.size(); ++i) {
    ModelSpec spec = MlpSpec(tenants[i], {1, 2, 4}, 100 + 50 * i);
    spec.weight = i == 0 ? 2.0 : 1.0;  // one hot, weighted tenant
    ASSERT_TRUE(server.RegisterModel(std::move(spec)).ok());
  }
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        // The hot tenant takes half the traffic, the rest spreads.
        const std::string& tenant =
            (c + i) % 2 == 0 ? tenants[0]
                             : tenants[1 + static_cast<size_t>(
                                               (c + i / 2) % 3)];
        const int64_t rows = 1 + (c + i) % 2;
        auto f = server.Submit(
            tenant, MlpInput(rows, 3000 + static_cast<uint64_t>(
                                              c * 100 + i)));
        if (!f.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!f->get().ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace bolt
