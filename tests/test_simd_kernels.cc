// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0
//
// The SIMD tier of the CPU backend (label: tolerance).
//
//  * ISA knob plumbing: ParseCpuIsa / the strict ParseCpuIsaEnv, the
//    ResolveCpuIsaFor decision matrix (env kill-switch, ladder clamp,
//    opt-in default) across all three rungs, arch-token suffixing.
//  * The differential harness proper: 512 randomized (shape, layout,
//    epilogue, BlockConfig, ISA, prefetch, thread-count) tuples per op —
//    GEMM and conv — against the reference interpreter, each held to the
//    tier of its *resolved* ISA: bit identity for scalar blocks, the
//    documented ULP bound (common/ulp.h) for AVX2/AVX-512 ones.
//  * The scalar guarantee is unconditional: an explicit isa=kScalar block
//    stays bit-identical to the reference even on AVX2/AVX-512 hosts and
//    under BOLT_CPU_ISA=avx2|avx512 — the kill-switch direction of the
//    two-tier contract.
//  * Dispatch reality check: on SIMD hosts the tiers genuinely take
//    different code paths (FMA contraction shows up in the bits).
//  * Packing equality: the vectorized PackB/PackA paths (pack_simd.cc)
//    produce byte-identical panels to the scalar reference loops across
//    nr in {8, 16}, remainder tiles, strided gathers, and null rows; the
//    pack-mode toggle and the prefetch axis never change output bits.
//  * Deterministic remainder-tile tuples: k not a multiple of kc, n/m
//    tails smaller than one micro-tile — the shapes where zero-padding
//    bugs in the vector pack paths would surface.
//
// Unlike the `exact`-labelled suites, the assertions here depend on the
// host ISA and BOLT_CPU_ISA, so this binary carries the `tolerance` ctest
// label and CI runs it across the forced-ISA matrix with
// $BOLT_DIFF_SUMMARY capturing the per-op ULP accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "cpukernels/config.h"
#include "cpukernels/conv.h"
#include "cpukernels/cpuinfo.h"
#include "cpukernels/gemm.h"
#include "cpukernels/internal.h"
#include "cpukernels/micro.h"
#include "ir/graph.h"
#include "ir/interpreter.h"
#include "testing/diff_harness.h"

namespace bolt {
namespace {

using cpukernels::BlockConfig;
using cpukernels::CpuIsa;
using cpukernels::ResolveCpuIsaFor;

bool HostHasAvx2Tier() {
  return cpukernels::DetectedCpuIsa() == CpuIsa::kAvx2;
}

// ---------------------------------------------------------------------------
// ISA knob: parsing and the resolution decision matrix.
// ---------------------------------------------------------------------------

TEST(CpuIsaTest, ParseAcceptsTheDocumentedSpellings) {
  CpuIsa isa = CpuIsa::kAvx2;
  EXPECT_TRUE(cpukernels::ParseCpuIsa("auto", &isa));
  EXPECT_EQ(isa, CpuIsa::kAuto);
  EXPECT_TRUE(cpukernels::ParseCpuIsa("scalar", &isa));
  EXPECT_EQ(isa, CpuIsa::kScalar);
  EXPECT_TRUE(cpukernels::ParseCpuIsa("avx2", &isa));
  EXPECT_EQ(isa, CpuIsa::kAvx2);
  EXPECT_TRUE(cpukernels::ParseCpuIsa("avx512", &isa));
  EXPECT_EQ(isa, CpuIsa::kAvx512);
  for (const char* bad : {"", "AVX2", "sse", "avx", "avx512f", "scalar ",
                          "1"}) {
    CpuIsa unchanged = CpuIsa::kScalar;
    EXPECT_FALSE(cpukernels::ParseCpuIsa(bad, &unchanged)) << bad;
    EXPECT_EQ(unchanged, CpuIsa::kScalar) << bad;
  }
}

TEST(CpuIsaTest, EnvParseIsStrictAboutGarbage) {
  // The regression this pins down: EnvCpuIsa used to swallow unparseable
  // BOLT_CPU_ISA values silently, running a different tier than the
  // operator asked for.  ParseCpuIsaEnv is the strict parse underneath
  // the (now warn-once) env read: exact vocabulary only, no truncation.
  using cpukernels::ParseCpuIsaEnv;
  EXPECT_FALSE(ParseCpuIsaEnv(nullptr).has_value());
  ASSERT_TRUE(ParseCpuIsaEnv("auto").has_value());
  EXPECT_EQ(*ParseCpuIsaEnv("auto"), CpuIsa::kAuto);
  EXPECT_EQ(*ParseCpuIsaEnv("scalar"), CpuIsa::kScalar);
  EXPECT_EQ(*ParseCpuIsaEnv("avx2"), CpuIsa::kAvx2);
  EXPECT_EQ(*ParseCpuIsaEnv("avx512"), CpuIsa::kAvx512);
  // Trailing garbage is rejected, never truncated to a valid prefix.
  for (const char* bad :
       {"", " ", "avx2 ", " avx2", "avx2,scalar", "scalar\n", "avx2x",
        "AVX512", "Scalar", "auto=1", "avx-512", "2"}) {
    EXPECT_FALSE(ParseCpuIsaEnv(bad).has_value()) << "\"" << bad << "\"";
  }
}

TEST(CpuIsaTest, PackModeEnvParseIsStrict) {
  using cpukernels::CpuPackMode;
  using cpukernels::ParseCpuPackModeEnv;
  EXPECT_FALSE(ParseCpuPackModeEnv(nullptr).has_value());
  ASSERT_TRUE(ParseCpuPackModeEnv("simd").has_value());
  EXPECT_EQ(*ParseCpuPackModeEnv("simd"), CpuPackMode::kSimd);
  EXPECT_EQ(*ParseCpuPackModeEnv("scalar"), CpuPackMode::kScalar);
  for (const char* bad : {"", "SIMD", "simd ", "scalar,simd", "auto"}) {
    EXPECT_FALSE(ParseCpuPackModeEnv(bad).has_value()) << "\"" << bad
                                                       << "\"";
  }
}

TEST(CpuIsaTest, ResolutionMatrix) {
  const CpuIsa A = CpuIsa::kAuto, S = CpuIsa::kScalar, V = CpuIsa::kAvx2,
               Z = CpuIsa::kAvx512;
  // env=scalar is a hard kill-switch regardless of request or host.
  for (CpuIsa requested : {A, S, V, Z}) {
    for (CpuIsa host : {S, V, Z}) {
      EXPECT_EQ(ResolveCpuIsaFor(requested, S, host), S);
    }
  }
  // Unset env (kAuto): SIMD is opt-in — kAuto stays scalar, an explicit
  // request is honored clamped down the ladder to what the host can run.
  EXPECT_EQ(ResolveCpuIsaFor(A, A, V), S);
  EXPECT_EQ(ResolveCpuIsaFor(A, A, Z), S);
  EXPECT_EQ(ResolveCpuIsaFor(A, A, S), S);
  EXPECT_EQ(ResolveCpuIsaFor(V, A, V), V);
  EXPECT_EQ(ResolveCpuIsaFor(V, A, S), S);  // clamped to host
  EXPECT_EQ(ResolveCpuIsaFor(S, A, V), S);
  EXPECT_EQ(ResolveCpuIsaFor(Z, A, Z), Z);
  EXPECT_EQ(ResolveCpuIsaFor(Z, A, V), V);  // one rung down the ladder
  EXPECT_EQ(ResolveCpuIsaFor(Z, A, S), S);  // two rungs down
  EXPECT_EQ(ResolveCpuIsaFor(V, A, Z), V);  // a narrow request never widens
  // env=avx2 flips the default for kAuto requests, still host-clamped.
  EXPECT_EQ(ResolveCpuIsaFor(A, V, V), V);
  EXPECT_EQ(ResolveCpuIsaFor(A, V, S), S);
  EXPECT_EQ(ResolveCpuIsaFor(A, V, Z), V);  // env caps below the host
  EXPECT_EQ(ResolveCpuIsaFor(S, V, V), S);  // per-block scalar pin wins
  EXPECT_EQ(ResolveCpuIsaFor(V, V, V), V);
  // env=avx512: kAuto requests ride to the top rung the host supports.
  EXPECT_EQ(ResolveCpuIsaFor(A, Z, Z), Z);
  EXPECT_EQ(ResolveCpuIsaFor(A, Z, V), V);
  EXPECT_EQ(ResolveCpuIsaFor(A, Z, S), S);
  EXPECT_EQ(ResolveCpuIsaFor(S, Z, Z), S);  // scalar pin still wins
  EXPECT_EQ(ResolveCpuIsaFor(V, Z, Z), V);  // explicit narrow pin wins
  EXPECT_EQ(ResolveCpuIsaFor(Z, Z, Z), Z);
  // The resolved mode is never kAuto.
  for (CpuIsa requested : {A, S, V, Z}) {
    for (CpuIsa env : {A, S, V, Z}) {
      for (CpuIsa host : {S, V, Z}) {
        EXPECT_NE(ResolveCpuIsaFor(requested, env, host), A);
      }
    }
  }
}

TEST(CpuIsaTest, DetectionImpliesCompiledKernel) {
  if (HostHasAvx2Tier()) {
    EXPECT_TRUE(cpukernels::internal::Avx2MicroKernelAvailable());
  }
  if (cpukernels::DetectedCpuIsa() == CpuIsa::kAvx512) {
    EXPECT_TRUE(cpukernels::internal::Avx512MicroKernelAvailable());
    EXPECT_TRUE(cpukernels::HostSupportsAvx512());
    // The ladder never skips a rung: an AVX-512 host also has AVX2+FMA.
    EXPECT_TRUE(cpukernels::internal::Avx2MicroKernelAvailable());
  }
  // Never detects something the resolver would refuse.
  EXPECT_NE(cpukernels::DetectedCpuIsa(), CpuIsa::kAuto);
}

TEST(CpuIsaTest, ArchTokenCarriesTheIsaSuffix) {
  const auto info = cpukernels::HostCacheInfo();
  const std::string scalar_tok =
      cpukernels::CpuArchTokenFor(info, CpuIsa::kScalar);
  const std::string avx2_tok =
      cpukernels::CpuArchTokenFor(info, CpuIsa::kAvx2);
  const std::string avx512_tok =
      cpukernels::CpuArchTokenFor(info, CpuIsa::kAvx512);
  EXPECT_NE(scalar_tok, avx2_tok);
  EXPECT_NE(avx2_tok, avx512_tok);
  EXPECT_NE(scalar_tok.find("-scalar"), std::string::npos);
  EXPECT_NE(avx2_tok.find("-avx2"), std::string::npos);
  EXPECT_NE(avx512_tok.find("-avx512"), std::string::npos);
  // The process-wide token reflects the process default, so tuning-cache
  // records never cross ISA modes.
  EXPECT_EQ(cpukernels::CpuArchToken(),
            cpukernels::CpuArchTokenFor(info, cpukernels::DefaultCpuIsa()));
}

// ---------------------------------------------------------------------------
// The harness proper: 512 randomized tuples per op, tier picked from each
// block's resolved ISA.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, RandomizedGemmTuples) {
  Rng rng(20260806);
  ThreadPool pool2(2), pool5(5);
  ThreadPool* pools[] = {nullptr, &pool2, &pool5};
  for (int trial = 0; trial < 512; ++trial) {
    const int64_t m = rng.Uniform(1, 40);
    const int64_t n = rng.Uniform(1, 33);
    const int64_t k = rng.Uniform(1, 80);
    const DType dt = trial % 3 == 0 ? DType::kFloat32 : DType::kFloat16;
    const BlockConfig block = difftest::RandomBlock(rng, /*isa_axis=*/true);
    ThreadPool* pool = pools[rng.Uniform(0, 2)];
    const bool has_bias = rng.Uniform(0, 1) == 1;
    const bool has_residual = rng.Uniform(0, 1) == 1;
    const ActivationKind act =
        difftest::kActivations[rng.Uniform(0, 3)];
    SCOPED_TRACE(StrCat("trial=", trial, " m=", m, " n=", n, " k=", k,
                        " mc=", block.mc, " kc=", block.kc, " nc=", block.nc,
                        " isa=", cpukernels::CpuIsaName(block.isa),
                        " bias=", has_bias, " res=", has_residual));

    Tensor a = difftest::RandomTensor(TensorDesc(dt, {m, k}), 13000 + trial);
    Tensor w = difftest::RandomTensor(TensorDesc(dt, {n, k}), 14000 + trial);
    Tensor bias = difftest::RandomTensor(TensorDesc(dt, {n}), 15000 + trial);
    Tensor res =
        difftest::RandomTensor(TensorDesc(dt, {m, n}), 16000 + trial);

    cpukernels::Epilogue epi;
    epi.output_dtype = dt;
    epi.boundary_quantize = true;
    if (has_bias) epi.bias = bias.data().data();
    if (has_residual) epi.residual = res.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Gemm(a, w, epi, block, pool);

    Tensor want = refop::Dense(a, w);
    if (has_bias) want = refop::BiasAdd(want, bias);
    want = refop::Activation(want, act);
    if (has_residual) want = refop::Add(want, res);
    EXPECT_TRUE(difftest::CheckDiff(
        "gemm", got, want,
        difftest::ToleranceFor(cpukernels::ResolveCpuIsa(block.isa), dt)));
  }
  EXPECT_GE(difftest::StatsFor("gemm").checks, 512);
}

TEST(SimdDifferentialTest, RandomizedConvTuples) {
  Rng rng(20260807);
  ThreadPool pool3(3);
  int done = 0;
  for (int trial = 0; done < 512 && trial < 4096; ++trial) {
    const int64_t h = rng.Uniform(4, 10);
    // A quarter of the draws use block-aligned channels so the NCHWc arm
    // of the layout axis (which needs C and OC divisible by kNCHWcBlock)
    // gets real coverage instead of a rare aligned accident.
    const bool aligned = rng.Uniform(0, 3) == 0;
    const int64_t c =
        aligned ? kNCHWcBlock * rng.Uniform(1, 2) : rng.Uniform(1, 8);
    const int64_t oc =
        aligned ? kNCHWcBlock * rng.Uniform(1, 2) : rng.Uniform(1, 10);
    const Layout layout = difftest::RandomConvLayout(rng, c, oc);
    const int64_t kernel = 1 + 2 * rng.Uniform(0, 1);
    const int64_t stride = rng.Uniform(1, 2);
    const int64_t pad = rng.Uniform(0, kernel - 1);
    const int64_t dilation = kernel == 3 ? rng.Uniform(1, 2) : 1;
    // Skip draws whose output would be empty (e.g. h=4, dilated 3x3
    // kernel spanning 5, no padding) — the kernels BOLT_CHECK on those.
    if (h + 2 * pad < (kernel - 1) * dilation + 1) continue;
    ++done;
    const DType dt = trial % 4 == 0 ? DType::kFloat32 : DType::kFloat16;
    const BlockConfig block = difftest::RandomBlock(rng, /*isa_axis=*/true);
    ThreadPool* pool = rng.Uniform(0, 1) == 1 ? &pool3 : nullptr;
    const bool has_bias = rng.Uniform(0, 1) == 1;
    const ActivationKind act =
        difftest::kActivations[rng.Uniform(0, 3)];
    SCOPED_TRACE(StrCat("trial=", trial, " h=", h, " c=", c, " oc=", oc,
                        " f=", kernel, " s=", stride, " p=", pad,
                        " d=", dilation, " ", LayoutName(layout),
                        " isa=", cpukernels::CpuIsaName(block.isa)));

    std::vector<int64_t> xs = layout == Layout::kNHWC
                                  ? std::vector<int64_t>{1, h, h, c}
                                  : std::vector<int64_t>{1, c, h, h};
    Tensor x =
        difftest::RandomTensor(TensorDesc(dt, xs, layout), 17000 + trial);
    Tensor w = difftest::RandomTensor(
        TensorDesc(dt, {oc, kernel, kernel, c}), 18000 + trial);
    Tensor bias =
        difftest::RandomTensor(TensorDesc(dt, {oc}), 19000 + trial);

    Conv2dAttrs attrs;
    attrs.stride_h = attrs.stride_w = stride;
    attrs.pad_h = attrs.pad_w = pad;
    attrs.dilation_h = attrs.dilation_w = dilation;
    cpukernels::ConvParams p;
    p.stride_h = p.stride_w = stride;
    p.pad_h = p.pad_w = pad;
    p.dilation_h = p.dilation_w = dilation;

    cpukernels::Epilogue epi;
    epi.output_dtype = dt;
    epi.boundary_quantize = true;
    if (has_bias) epi.bias = bias.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Conv2d(x, w, p, epi, block, pool);

    Tensor want = refop::Conv2d(x, w, attrs);
    if (has_bias) want = refop::BiasAdd(want, bias);
    want = refop::Activation(want, act);
    EXPECT_TRUE(difftest::CheckDiff(
        "conv", got, want,
        difftest::ToleranceFor(cpukernels::ResolveCpuIsa(block.isa), dt)));
  }
  EXPECT_GE(difftest::StatsFor("conv").checks, 512);
}

// ---------------------------------------------------------------------------
// The scalar kill-switch direction: an explicit isa=kScalar block is
// bit-identical to the reference no matter what the host or env says.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, ScalarBlocksStayBitExactEverywhere) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const int64_t m = rng.Uniform(1, 64);
    const int64_t n = rng.Uniform(1, 48);
    const int64_t k = rng.Uniform(1, 128);
    const DType dt = trial % 2 == 0 ? DType::kFloat32 : DType::kFloat16;
    BlockConfig block = difftest::RandomBlock(rng);
    block.isa = CpuIsa::kScalar;
    SCOPED_TRACE(StrCat("trial=", trial, " m=", m, " n=", n, " k=", k));
    Tensor a = difftest::RandomTensor(TensorDesc(dt, {m, k}), 21000 + trial);
    Tensor w = difftest::RandomTensor(TensorDesc(dt, {n, k}), 22000 + trial);
    cpukernels::Epilogue epi;
    epi.output_dtype = dt;
    epi.boundary_quantize = true;
    Tensor got = cpukernels::Gemm(a, w, epi, block);
    Tensor want = refop::Dense(a, w);
    EXPECT_TRUE(difftest::CheckDiff("gemm", got, want, difftest::Tolerance{}));
  }
}

// ---------------------------------------------------------------------------
// Dispatch reality check: the AVX2 tier genuinely executes different code.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, Avx2TierActuallyDiverges) {
  if (cpukernels::ResolveCpuIsa(CpuIsa::kAvx2) != CpuIsa::kAvx2) {
    GTEST_SKIP() << "host or env pins the scalar tier";
  }
  // 64x64 FP32 outputs, each a 512-term dot product: if FMA contraction
  // were not happening, the two tiers would be running the same kernel.
  Tensor a = difftest::RandomTensor(
      TensorDesc(DType::kFloat32, {64, 512}), 31000);
  Tensor w = difftest::RandomTensor(
      TensorDesc(DType::kFloat32, {64, 512}), 32000);
  cpukernels::Epilogue epi;
  epi.output_dtype = DType::kFloat32;
  BlockConfig scalar, avx2;
  scalar.isa = CpuIsa::kScalar;
  avx2.isa = CpuIsa::kAvx2;
  Tensor s = cpukernels::Gemm(a, w, epi, scalar);
  Tensor v = cpukernels::Gemm(a, w, epi, avx2);
  EXPECT_GT(s.MaxAbsDiff(v), 0.0f)
      << "AVX2 and scalar tiers produced bit-identical results on a "
         "contraction-sensitive shape — is dispatch actually happening?";
  // ...but they diverge only within the documented bound.
  EXPECT_TRUE(difftest::CheckDiff(
      "gemm", v, s,
      difftest::ToleranceFor(CpuIsa::kAvx2, DType::kFloat32)));
}

TEST(SimdDifferentialTest, Avx512TierActuallyDiverges) {
  if (cpukernels::ResolveCpuIsa(CpuIsa::kAvx512) != CpuIsa::kAvx512) {
    GTEST_SKIP() << "host, binary, or env caps the ladder below AVX-512";
  }
  // Same contraction-sensitive shape as the AVX2 reality check: if the
  // 4x16 kernel were not actually dispatched, scalar and "avx512" would
  // agree to the bit.  (AVX-512 vs AVX2 is NOT asserted to diverge — both
  // run the same ascending-k FMA chain per element, just a different
  // number of lanes, so they may legitimately agree bit-for-bit.)
  Tensor a = difftest::RandomTensor(
      TensorDesc(DType::kFloat32, {64, 512}), 33000);
  Tensor w = difftest::RandomTensor(
      TensorDesc(DType::kFloat32, {64, 512}), 34000);
  cpukernels::Epilogue epi;
  epi.output_dtype = DType::kFloat32;
  BlockConfig scalar, avx512;
  scalar.isa = CpuIsa::kScalar;
  avx512.isa = CpuIsa::kAvx512;
  Tensor s = cpukernels::Gemm(a, w, epi, scalar);
  Tensor z = cpukernels::Gemm(a, w, epi, avx512);
  EXPECT_GT(s.MaxAbsDiff(z), 0.0f)
      << "AVX-512 and scalar tiers produced bit-identical results on a "
         "contraction-sensitive shape — is dispatch actually happening?";
  EXPECT_TRUE(difftest::CheckDiff(
      "gemm", z, s,
      difftest::ToleranceFor(CpuIsa::kAvx512, DType::kFloat32)));
}

// ---------------------------------------------------------------------------
// Per-tier resolve matrix: every requestable tier runs the same workload
// and is held to its resolved tolerance.  On hosts missing a rung the
// request clamps down the ladder — which is the production path, so the
// assertion still holds (a clamped-to-scalar draw is checked bit-exact).
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, PerTierResolveMatrix) {
  ThreadPool pool2(2);
  for (const CpuIsa isa : {CpuIsa::kAuto, CpuIsa::kScalar, CpuIsa::kAvx2,
                           CpuIsa::kAvx512}) {
    const CpuIsa resolved = cpukernels::ResolveCpuIsa(isa);
    for (const DType dt : {DType::kFloat32, DType::kFloat16}) {
      SCOPED_TRACE(StrCat("isa=", cpukernels::CpuIsaName(isa), " resolved=",
                          cpukernels::CpuIsaName(resolved), " dt=",
                          DTypeName(dt)));
      BlockConfig block;
      block.isa = isa;
      block.prefetch = true;  // the axis must never change numerics
      Tensor a = difftest::RandomTensor(TensorDesc(dt, {21, 70}), 35000);
      Tensor w = difftest::RandomTensor(TensorDesc(dt, {19, 70}), 36000);
      Tensor bias = difftest::RandomTensor(TensorDesc(dt, {19}), 37000);
      cpukernels::Epilogue epi;
      epi.output_dtype = dt;
      epi.boundary_quantize = true;
      epi.bias = bias.data().data();
      epi.acts = {ActivationKind::kRelu};
      Tensor got = cpukernels::Gemm(a, w, epi, block, &pool2);
      Tensor want = refop::Activation(
          refop::BiasAdd(refop::Dense(a, w), bias), ActivationKind::kRelu);
      EXPECT_TRUE(difftest::CheckDiff("gemm", got, want,
                                      difftest::ToleranceFor(resolved, dt)));
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic remainder-tile tuples: the shapes where zero-padding bugs
// in the vector pack paths would surface — k not a multiple of kc, n and
// m tails smaller than one micro-tile, panels starting mid-matrix.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, RemainderTileTuplesAreCoveredExplicitly) {
  const struct {
    int64_t m, n, k, mc, kc, nc;
  } cases[] = {
      {5, 19, 70, 8, 64, 16},      // m tail 1, n tail 3, k remainder 6
      {4, 17, 64, 4, 64, 8},       // n = 2*8 + 1: one scalar tail column
      {3, 7, 9, 64, 256, 4096},    // everything below one micro-tile
      {12, 16, 130, 8, 64, 8},     // k = 2*64 + 2: 2-deep trailing slice
      {9, 33, 97, 4, 32, 32},      // several jc panels, 1-wide k tail
      {1, 1, 1, 4, 8, 8},          // degenerate minimum
      {16, 15, 48, 8, 16, 16},     // n tail 7: widest masked tail load
  };
  for (const auto& c : cases) {
    for (const CpuIsa isa : {CpuIsa::kAuto, CpuIsa::kScalar, CpuIsa::kAvx2,
                             CpuIsa::kAvx512}) {
      const CpuIsa resolved = cpukernels::ResolveCpuIsa(isa);
      for (const DType dt : {DType::kFloat32, DType::kFloat16}) {
        SCOPED_TRACE(StrCat("m=", c.m, " n=", c.n, " k=", c.k, " mc=", c.mc,
                            " kc=", c.kc, " nc=", c.nc, " isa=",
                            cpukernels::CpuIsaName(isa), " dt=",
                            DTypeName(dt)));
        BlockConfig block;
        block.mc = static_cast<int>(c.mc);
        block.kc = static_cast<int>(c.kc);
        block.nc = static_cast<int>(c.nc);
        block.isa = isa;
        Tensor a = difftest::RandomTensor(TensorDesc(dt, {c.m, c.k}),
                                          41000 + c.m * 7 + c.k);
        Tensor w = difftest::RandomTensor(TensorDesc(dt, {c.n, c.k}),
                                          42000 + c.n * 7 + c.k);
        Tensor res = difftest::RandomTensor(TensorDesc(dt, {c.m, c.n}),
                                            43000 + c.m + c.n);
        cpukernels::Epilogue epi;
        epi.output_dtype = dt;
        epi.boundary_quantize = true;
        epi.residual = res.data().data();
        epi.acts = {ActivationKind::kHardswish};
        Tensor got = cpukernels::Gemm(a, w, epi, block);
        Tensor want = refop::Add(
            refop::Activation(refop::Dense(a, w), ActivationKind::kHardswish),
            res);
        EXPECT_TRUE(difftest::CheckDiff(
            "gemm", got, want, difftest::ToleranceFor(resolved, dt)));
      }
    }
  }
  // Conv remainders: a channel count below one vector (NHWC contiguous
  // runs of 5), the NCHW gather path with the same tail geometry, and
  // blocked NCHWc (which needs aligned channels) with its im2col runs
  // clamped at the 8-channel block boundary.
  for (const Layout layout :
       {Layout::kNHWC, Layout::kNCHW, Layout::kNCHWc}) {
    for (const CpuIsa isa : {CpuIsa::kAuto, CpuIsa::kAvx2,
                             CpuIsa::kAvx512}) {
      const CpuIsa resolved = cpukernels::ResolveCpuIsa(isa);
      SCOPED_TRACE(StrCat(LayoutName(layout), " isa=",
                          cpukernels::CpuIsaName(isa)));
      const bool blocked = layout == Layout::kNCHWc;
      const int64_t cc = blocked ? 8 : 5;   // NCHWc: one full channel block
      const int64_t oc = blocked ? 16 : 11;  // k = 3*3*8 = 72: 8-deep tail
      BlockConfig block;
      block.mc = 8;
      block.kc = 16;  // k = 3*3*5 = 45: a 13-deep trailing slice
      block.nc = 8;
      block.isa = isa;
      std::vector<int64_t> xs = layout == Layout::kNHWC
                                    ? std::vector<int64_t>{1, 7, 7, cc}
                                    : std::vector<int64_t>{1, cc, 7, 7};
      Tensor x = difftest::RandomTensor(
          TensorDesc(DType::kFloat16, xs, layout), 44000);
      Tensor w = difftest::RandomTensor(
          TensorDesc(DType::kFloat16, {oc, 3, 3, cc}), 45000);
      Conv2dAttrs attrs;
      attrs.pad_h = attrs.pad_w = 1;
      cpukernels::ConvParams p;
      p.pad_h = p.pad_w = 1;
      cpukernels::Epilogue epi;
      epi.output_dtype = DType::kFloat16;
      epi.boundary_quantize = true;
      epi.acts = {ActivationKind::kRelu};
      Tensor got = cpukernels::Conv2d(x, w, p, epi, block);
      Tensor want = refop::Activation(refop::Conv2d(x, w, attrs),
                                      ActivationKind::kRelu);
      EXPECT_TRUE(difftest::CheckDiff(
          "conv", got, want,
          difftest::ToleranceFor(resolved, DType::kFloat16)));
    }
  }
}

// ---------------------------------------------------------------------------
// Packing equality: the vectorized pack paths are *bit-identical data
// movement* — the SIMD tiers' ULP budget is spent only in the micro-kernel
// FMA.  These tests pin that claim at the byte level, remainders included.
// ---------------------------------------------------------------------------

TEST(SimdPackEqualityTest, PackBPanelSimdMatchesScalarPackB) {
  Rng rng(515151);
  const struct {
    int64_t n, k, j0, ncb, p0, kcb;
  } cases[] = {
      {8, 8, 0, 8, 0, 8},       // exactly one full strip
      {19, 70, 0, 19, 64, 6},   // n tail 3, k remainder 6
      {19, 70, 16, 3, 0, 64},   // last strip narrower than a micro-tile
      {1, 5, 0, 1, 0, 5},       // single column, sub-vector depth
      {23, 33, 8, 15, 30, 3},   // offset panel, 3-deep k tail
      {40, 100, 0, 40, 96, 4},  // several strips over a k tail
      {9, 17, 0, 9, 0, 17},     // 8 + 1 columns: one remainder column
      {15, 64, 0, 15, 0, 64},   // 7-wide masked tail
  };
  for (const int64_t nr : {int64_t{8}, int64_t{16}}) {
    for (const auto& c : cases) {
      SCOPED_TRACE(StrCat("nr=", nr, " n=", c.n, " k=", c.k, " j0=", c.j0,
                          " ncb=", c.ncb, " p0=", c.p0, " kcb=", c.kcb));
      std::vector<float> w(static_cast<size_t>(c.n * c.k));
      rng.FillNormal(w);
      const int64_t strips = cpukernels::internal::CeilDiv(c.ncb, nr);
      const size_t bytes = static_cast<size_t>(strips * c.kcb * nr);
      // Sentinel-fill both buffers so a byte the packer forgot to write
      // (instead of zero-padding) shows up as a mismatch.
      std::vector<float> want(bytes, -777.0f), got(bytes, -777.0f);
      cpukernels::internal::PackB(w.data(), c.k, c.n, c.j0, c.ncb, c.p0,
                                  c.kcb, nr, want.data());
      for (const bool prefetch : {false, true}) {
        std::fill(got.begin(), got.end(), -777.0f);
        cpukernels::internal::PackBPanelSimd(w.data(), c.k, c.n, c.j0,
                                             c.ncb, c.p0, c.kcb, nr,
                                             prefetch, got.data());
        EXPECT_EQ(std::memcmp(want.data(), got.data(),
                              bytes * sizeof(float)),
                  0)
            << "prefetch=" << prefetch;
      }
    }
  }
}

TEST(SimdPackEqualityTest, PackA4RunSimdMatchesScalarGather) {
  Rng rng(626262);
  std::vector<float> buf(4096);
  rng.FillNormal(buf);
  for (const int64_t stride : {int64_t{1}, int64_t{3}, int64_t{7},
                               int64_t{40}}) {
    for (const int64_t len : {int64_t{1}, int64_t{2}, int64_t{3},
                              int64_t{4}, int64_t{5}, int64_t{7},
                              int64_t{8}, int64_t{9}, int64_t{15},
                              int64_t{16}, int64_t{31}, int64_t{64}}) {
      for (int mask = 0; mask < 16; ++mask) {  // every null-row pattern
        SCOPED_TRACE(StrCat("stride=", stride, " len=", len, " mask=",
                            mask));
        const float* rows[4];
        for (int r = 0; r < 4; ++r) {
          rows[r] = (mask >> r) & 1 ? buf.data() + r * 61 : nullptr;
        }
        std::vector<float> want(static_cast<size_t>(len * 4), -777.0f);
        std::vector<float> got(static_cast<size_t>(len * 4), -777.0f);
        for (int64_t t = 0; t < len; ++t) {
          for (int r = 0; r < 4; ++r) {
            want[static_cast<size_t>(t * 4 + r)] =
                rows[r] != nullptr ? rows[r][t * stride] : 0.0f;
          }
        }
        cpukernels::internal::PackA4RunSimd(rows, len, stride, got.data());
        EXPECT_EQ(std::memcmp(want.data(), got.data(),
                              want.size() * sizeof(float)),
                  0);
      }
    }
  }
}

TEST(SimdPackEqualityTest, PackModeToggleIsBitExact) {
  // BOLT_CPU_PACK=scalar (here: the runtime override) must reproduce the
  // vectorized pack/epilogue output exactly — same micro-kernel tier,
  // only the data movement differs, and data movement has no rounding.
  if (cpukernels::ResolveCpuIsa(CpuIsa::kAvx2) != CpuIsa::kAvx2) {
    GTEST_SKIP() << "host or env pins the scalar tier";
  }
  const cpukernels::CpuPackMode prev = cpukernels::CurrentCpuPackMode();
  const struct {
    int64_t m, n, k;
  } cases[] = {{5, 19, 70}, {32, 33, 65}, {1, 1, 1}, {24, 16, 128}};
  for (const auto& c : cases) {
    for (const DType dt : {DType::kFloat32, DType::kFloat16}) {
      SCOPED_TRACE(StrCat("m=", c.m, " n=", c.n, " k=", c.k, " dt=",
                          DTypeName(dt)));
      BlockConfig block;
      block.isa = CpuIsa::kAvx2;
      Tensor a = difftest::RandomTensor(TensorDesc(dt, {c.m, c.k}), 51000);
      Tensor w = difftest::RandomTensor(TensorDesc(dt, {c.n, c.k}), 52000);
      Tensor bias = difftest::RandomTensor(TensorDesc(dt, {c.n}), 53000);
      Tensor res = difftest::RandomTensor(TensorDesc(dt, {c.m, c.n}),
                                          54000);
      cpukernels::Epilogue epi;
      epi.output_dtype = dt;
      epi.boundary_quantize = true;
      epi.bias = bias.data().data();
      epi.residual = res.data().data();
      epi.acts = {ActivationKind::kHardswish};
      cpukernels::SetCpuPackMode(cpukernels::CpuPackMode::kScalar);
      Tensor scalar_pack = cpukernels::Gemm(a, w, epi, block);
      cpukernels::SetCpuPackMode(cpukernels::CpuPackMode::kSimd);
      Tensor simd_pack = cpukernels::Gemm(a, w, epi, block);
      EXPECT_EQ(std::memcmp(scalar_pack.data().data(),
                            simd_pack.data().data(),
                            scalar_pack.data().size() * sizeof(float)),
                0);
    }
  }
  cpukernels::SetCpuPackMode(prev);
}

TEST(SimdPackEqualityTest, NchwcConvPackModeToggleIsBitExact) {
  // Blocked-NCHWc im2col feeds PackA4RunSimd stride-1 runs clamped at the
  // 8-channel block boundary; the scalar and SIMD packers must move
  // identical bytes there too — padding-induced null rows, strided taps,
  // multi-block channels, and remainder tiles included.
  if (cpukernels::ResolveCpuIsa(CpuIsa::kAvx2) != CpuIsa::kAvx2) {
    GTEST_SKIP() << "host or env pins the scalar tier";
  }
  const cpukernels::CpuPackMode prev = cpukernels::CurrentCpuPackMode();
  const struct {
    int64_t h, c, oc, kernel, stride, pad;
  } cases[] = {
      {7, 8, 8, 3, 1, 1},    // padding: null rows at every edge
      {5, 16, 8, 3, 2, 0},   // two channel blocks, strided taps
      {4, 8, 16, 1, 1, 0},   // pointwise: pure block-copy packing
      {9, 24, 8, 3, 1, 2},   // three blocks, halo wider than the kernel
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(StrCat("h=", c.h, " c=", c.c, " oc=", c.oc, " f=",
                        c.kernel, " s=", c.stride, " p=", c.pad));
    BlockConfig block;
    block.isa = CpuIsa::kAvx2;
    block.mc = 8;
    block.kc = 16;
    block.nc = 8;
    Tensor x = difftest::RandomTensor(
        TensorDesc(DType::kFloat16, {1, c.c, c.h, c.h}, Layout::kNCHWc),
        61000 + c.h);
    Tensor w = difftest::RandomTensor(
        TensorDesc(DType::kFloat16, {c.oc, c.kernel, c.kernel, c.c}),
        62000 + c.h);
    cpukernels::ConvParams p;
    p.stride_h = p.stride_w = c.stride;
    p.pad_h = p.pad_w = c.pad;
    cpukernels::Epilogue epi;
    epi.output_dtype = DType::kFloat16;
    epi.boundary_quantize = true;
    cpukernels::SetCpuPackMode(cpukernels::CpuPackMode::kScalar);
    Tensor scalar_pack = cpukernels::Conv2d(x, w, p, epi, block);
    cpukernels::SetCpuPackMode(cpukernels::CpuPackMode::kSimd);
    Tensor simd_pack = cpukernels::Conv2d(x, w, p, epi, block);
    EXPECT_EQ(std::memcmp(scalar_pack.data().data(),
                          simd_pack.data().data(),
                          scalar_pack.data().size() * sizeof(float)),
              0);
  }
  cpukernels::SetCpuPackMode(prev);
}

// ---------------------------------------------------------------------------
// Summary plumbing: the JSON artifact CI uploads.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, DiffSummaryRoundTrips) {
  const std::string path =
      StrCat(::testing::TempDir(), "bolt_diff_summary.json");
  ASSERT_TRUE(difftest::WriteDiffSummary(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"ops\""), std::string::npos);
  EXPECT_NE(json.find("\"isa\""), std::string::npos);
  EXPECT_NE(json.find("\"gemm\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bolt
