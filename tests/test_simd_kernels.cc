// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0
//
// The SIMD tier of the CPU backend (label: tolerance).
//
//  * ISA knob plumbing: ParseCpuIsa, the ResolveCpuIsaFor decision matrix
//    (env kill-switch, host clamp, opt-in default), arch-token suffixing.
//  * The differential harness proper: 512 randomized (shape, layout,
//    epilogue, BlockConfig, ISA, thread-count) tuples per op — GEMM and
//    conv — against the reference interpreter, each held to the tier of
//    its *resolved* ISA: bit identity for scalar blocks, the documented
//    ULP bound (common/ulp.h) for AVX2 ones.
//  * The scalar guarantee is unconditional: an explicit isa=kScalar block
//    stays bit-identical to the reference even on AVX2 hosts and under
//    BOLT_CPU_ISA=avx2 — the kill-switch direction of the two-tier
//    contract.
//  * Dispatch reality check: on AVX2 hosts the two tiers genuinely take
//    different code paths (FMA contraction shows up in the bits).
//
// Unlike the `exact`-labelled suites, the assertions here depend on the
// host ISA and BOLT_CPU_ISA, so this binary carries the `tolerance` ctest
// label and CI runs it across the forced-ISA matrix with
// $BOLT_DIFF_SUMMARY capturing the per-op ULP accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "cpukernels/config.h"
#include "cpukernels/conv.h"
#include "cpukernels/cpuinfo.h"
#include "cpukernels/gemm.h"
#include "cpukernels/micro.h"
#include "ir/graph.h"
#include "ir/interpreter.h"
#include "testing/diff_harness.h"

namespace bolt {
namespace {

using cpukernels::BlockConfig;
using cpukernels::CpuIsa;
using cpukernels::ResolveCpuIsaFor;

bool HostHasAvx2Tier() {
  return cpukernels::DetectedCpuIsa() == CpuIsa::kAvx2;
}

// ---------------------------------------------------------------------------
// ISA knob: parsing and the resolution decision matrix.
// ---------------------------------------------------------------------------

TEST(CpuIsaTest, ParseAcceptsTheDocumentedSpellings) {
  CpuIsa isa = CpuIsa::kAvx2;
  EXPECT_TRUE(cpukernels::ParseCpuIsa("auto", &isa));
  EXPECT_EQ(isa, CpuIsa::kAuto);
  EXPECT_TRUE(cpukernels::ParseCpuIsa("scalar", &isa));
  EXPECT_EQ(isa, CpuIsa::kScalar);
  EXPECT_TRUE(cpukernels::ParseCpuIsa("avx2", &isa));
  EXPECT_EQ(isa, CpuIsa::kAvx2);
  for (const char* bad : {"", "AVX2", "sse", "avx512", "scalar ", "1"}) {
    CpuIsa unchanged = CpuIsa::kScalar;
    EXPECT_FALSE(cpukernels::ParseCpuIsa(bad, &unchanged)) << bad;
    EXPECT_EQ(unchanged, CpuIsa::kScalar) << bad;
  }
}

TEST(CpuIsaTest, ResolutionMatrix) {
  const CpuIsa A = CpuIsa::kAuto, S = CpuIsa::kScalar, V = CpuIsa::kAvx2;
  // env=scalar is a hard kill-switch regardless of request or host.
  for (CpuIsa requested : {A, S, V}) {
    for (CpuIsa host : {S, V}) {
      EXPECT_EQ(ResolveCpuIsaFor(requested, S, host), S);
    }
  }
  // Unset env (kAuto): AVX2 is opt-in — kAuto stays scalar, an explicit
  // request is honored iff the host can.
  EXPECT_EQ(ResolveCpuIsaFor(A, A, V), S);
  EXPECT_EQ(ResolveCpuIsaFor(A, A, S), S);
  EXPECT_EQ(ResolveCpuIsaFor(V, A, V), V);
  EXPECT_EQ(ResolveCpuIsaFor(V, A, S), S);  // clamped to host
  EXPECT_EQ(ResolveCpuIsaFor(S, A, V), S);
  // env=avx2 flips the default for kAuto requests, still host-clamped.
  EXPECT_EQ(ResolveCpuIsaFor(A, V, V), V);
  EXPECT_EQ(ResolveCpuIsaFor(A, V, S), S);
  EXPECT_EQ(ResolveCpuIsaFor(S, V, V), S);  // per-block scalar pin wins
  EXPECT_EQ(ResolveCpuIsaFor(V, V, V), V);
  // The resolved mode is never kAuto.
  for (CpuIsa requested : {A, S, V}) {
    for (CpuIsa env : {A, S, V}) {
      for (CpuIsa host : {S, V}) {
        EXPECT_NE(ResolveCpuIsaFor(requested, env, host), A);
      }
    }
  }
}

TEST(CpuIsaTest, DetectionImpliesCompiledKernel) {
  if (HostHasAvx2Tier()) {
    EXPECT_TRUE(cpukernels::internal::Avx2MicroKernelAvailable());
  }
  // Never detects something the resolver would refuse.
  EXPECT_NE(cpukernels::DetectedCpuIsa(), CpuIsa::kAuto);
}

TEST(CpuIsaTest, ArchTokenCarriesTheIsaSuffix) {
  const auto info = cpukernels::HostCacheInfo();
  const std::string scalar_tok =
      cpukernels::CpuArchTokenFor(info, CpuIsa::kScalar);
  const std::string avx2_tok =
      cpukernels::CpuArchTokenFor(info, CpuIsa::kAvx2);
  EXPECT_NE(scalar_tok, avx2_tok);
  EXPECT_NE(scalar_tok.find("-scalar"), std::string::npos);
  EXPECT_NE(avx2_tok.find("-avx2"), std::string::npos);
  // The process-wide token reflects the process default, so tuning-cache
  // records never cross ISA modes.
  EXPECT_EQ(cpukernels::CpuArchToken(),
            cpukernels::CpuArchTokenFor(info, cpukernels::DefaultCpuIsa()));
}

// ---------------------------------------------------------------------------
// The harness proper: 512 randomized tuples per op, tier picked from each
// block's resolved ISA.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, RandomizedGemmTuples) {
  Rng rng(20260806);
  ThreadPool pool2(2), pool5(5);
  ThreadPool* pools[] = {nullptr, &pool2, &pool5};
  for (int trial = 0; trial < 512; ++trial) {
    const int64_t m = rng.Uniform(1, 40);
    const int64_t n = rng.Uniform(1, 33);
    const int64_t k = rng.Uniform(1, 80);
    const DType dt = trial % 3 == 0 ? DType::kFloat32 : DType::kFloat16;
    const BlockConfig block = difftest::RandomBlock(rng, /*isa_axis=*/true);
    ThreadPool* pool = pools[rng.Uniform(0, 2)];
    const bool has_bias = rng.Uniform(0, 1) == 1;
    const bool has_residual = rng.Uniform(0, 1) == 1;
    const ActivationKind act =
        difftest::kActivations[rng.Uniform(0, 3)];
    SCOPED_TRACE(StrCat("trial=", trial, " m=", m, " n=", n, " k=", k,
                        " mc=", block.mc, " kc=", block.kc, " nc=", block.nc,
                        " isa=", cpukernels::CpuIsaName(block.isa),
                        " bias=", has_bias, " res=", has_residual));

    Tensor a = difftest::RandomTensor(TensorDesc(dt, {m, k}), 13000 + trial);
    Tensor w = difftest::RandomTensor(TensorDesc(dt, {n, k}), 14000 + trial);
    Tensor bias = difftest::RandomTensor(TensorDesc(dt, {n}), 15000 + trial);
    Tensor res =
        difftest::RandomTensor(TensorDesc(dt, {m, n}), 16000 + trial);

    cpukernels::Epilogue epi;
    epi.output_dtype = dt;
    epi.boundary_quantize = true;
    if (has_bias) epi.bias = bias.data().data();
    if (has_residual) epi.residual = res.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Gemm(a, w, epi, block, pool);

    Tensor want = refop::Dense(a, w);
    if (has_bias) want = refop::BiasAdd(want, bias);
    want = refop::Activation(want, act);
    if (has_residual) want = refop::Add(want, res);
    EXPECT_TRUE(difftest::CheckDiff(
        "gemm", got, want,
        difftest::ToleranceFor(cpukernels::ResolveCpuIsa(block.isa), dt)));
  }
  EXPECT_GE(difftest::StatsFor("gemm").checks, 512);
}

TEST(SimdDifferentialTest, RandomizedConvTuples) {
  Rng rng(20260807);
  ThreadPool pool3(3);
  int done = 0;
  for (int trial = 0; done < 512 && trial < 4096; ++trial) {
    const Layout layout = trial % 2 == 0 ? Layout::kNHWC : Layout::kNCHW;
    const int64_t h = rng.Uniform(4, 10);
    const int64_t c = rng.Uniform(1, 8);
    const int64_t oc = rng.Uniform(1, 10);
    const int64_t kernel = 1 + 2 * rng.Uniform(0, 1);
    const int64_t stride = rng.Uniform(1, 2);
    const int64_t pad = rng.Uniform(0, kernel - 1);
    const int64_t dilation = kernel == 3 ? rng.Uniform(1, 2) : 1;
    // Skip draws whose output would be empty (e.g. h=4, dilated 3x3
    // kernel spanning 5, no padding) — the kernels BOLT_CHECK on those.
    if (h + 2 * pad < (kernel - 1) * dilation + 1) continue;
    ++done;
    const DType dt = trial % 4 == 0 ? DType::kFloat32 : DType::kFloat16;
    const BlockConfig block = difftest::RandomBlock(rng, /*isa_axis=*/true);
    ThreadPool* pool = rng.Uniform(0, 1) == 1 ? &pool3 : nullptr;
    const bool has_bias = rng.Uniform(0, 1) == 1;
    const ActivationKind act =
        difftest::kActivations[rng.Uniform(0, 3)];
    SCOPED_TRACE(StrCat("trial=", trial, " h=", h, " c=", c, " oc=", oc,
                        " f=", kernel, " s=", stride, " p=", pad,
                        " d=", dilation, " ", LayoutName(layout),
                        " isa=", cpukernels::CpuIsaName(block.isa)));

    std::vector<int64_t> xs = layout == Layout::kNHWC
                                  ? std::vector<int64_t>{1, h, h, c}
                                  : std::vector<int64_t>{1, c, h, h};
    Tensor x =
        difftest::RandomTensor(TensorDesc(dt, xs, layout), 17000 + trial);
    Tensor w = difftest::RandomTensor(
        TensorDesc(dt, {oc, kernel, kernel, c}), 18000 + trial);
    Tensor bias =
        difftest::RandomTensor(TensorDesc(dt, {oc}), 19000 + trial);

    Conv2dAttrs attrs;
    attrs.stride_h = attrs.stride_w = stride;
    attrs.pad_h = attrs.pad_w = pad;
    attrs.dilation_h = attrs.dilation_w = dilation;
    cpukernels::ConvParams p;
    p.stride_h = p.stride_w = stride;
    p.pad_h = p.pad_w = pad;
    p.dilation_h = p.dilation_w = dilation;

    cpukernels::Epilogue epi;
    epi.output_dtype = dt;
    epi.boundary_quantize = true;
    if (has_bias) epi.bias = bias.data().data();
    epi.acts = {act};
    Tensor got = cpukernels::Conv2d(x, w, p, epi, block, pool);

    Tensor want = refop::Conv2d(x, w, attrs);
    if (has_bias) want = refop::BiasAdd(want, bias);
    want = refop::Activation(want, act);
    EXPECT_TRUE(difftest::CheckDiff(
        "conv", got, want,
        difftest::ToleranceFor(cpukernels::ResolveCpuIsa(block.isa), dt)));
  }
  EXPECT_GE(difftest::StatsFor("conv").checks, 512);
}

// ---------------------------------------------------------------------------
// The scalar kill-switch direction: an explicit isa=kScalar block is
// bit-identical to the reference no matter what the host or env says.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, ScalarBlocksStayBitExactEverywhere) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const int64_t m = rng.Uniform(1, 64);
    const int64_t n = rng.Uniform(1, 48);
    const int64_t k = rng.Uniform(1, 128);
    const DType dt = trial % 2 == 0 ? DType::kFloat32 : DType::kFloat16;
    BlockConfig block = difftest::RandomBlock(rng);
    block.isa = CpuIsa::kScalar;
    SCOPED_TRACE(StrCat("trial=", trial, " m=", m, " n=", n, " k=", k));
    Tensor a = difftest::RandomTensor(TensorDesc(dt, {m, k}), 21000 + trial);
    Tensor w = difftest::RandomTensor(TensorDesc(dt, {n, k}), 22000 + trial);
    cpukernels::Epilogue epi;
    epi.output_dtype = dt;
    epi.boundary_quantize = true;
    Tensor got = cpukernels::Gemm(a, w, epi, block);
    Tensor want = refop::Dense(a, w);
    EXPECT_TRUE(difftest::CheckDiff("gemm", got, want, difftest::Tolerance{}));
  }
}

// ---------------------------------------------------------------------------
// Dispatch reality check: the AVX2 tier genuinely executes different code.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, Avx2TierActuallyDiverges) {
  if (cpukernels::ResolveCpuIsa(CpuIsa::kAvx2) != CpuIsa::kAvx2) {
    GTEST_SKIP() << "host or env pins the scalar tier";
  }
  // 64x64 FP32 outputs, each a 512-term dot product: if FMA contraction
  // were not happening, the two tiers would be running the same kernel.
  Tensor a = difftest::RandomTensor(
      TensorDesc(DType::kFloat32, {64, 512}), 31000);
  Tensor w = difftest::RandomTensor(
      TensorDesc(DType::kFloat32, {64, 512}), 32000);
  cpukernels::Epilogue epi;
  epi.output_dtype = DType::kFloat32;
  BlockConfig scalar, avx2;
  scalar.isa = CpuIsa::kScalar;
  avx2.isa = CpuIsa::kAvx2;
  Tensor s = cpukernels::Gemm(a, w, epi, scalar);
  Tensor v = cpukernels::Gemm(a, w, epi, avx2);
  EXPECT_GT(s.MaxAbsDiff(v), 0.0f)
      << "AVX2 and scalar tiers produced bit-identical results on a "
         "contraction-sensitive shape — is dispatch actually happening?";
  // ...but they diverge only within the documented bound.
  EXPECT_TRUE(difftest::CheckDiff(
      "gemm", v, s,
      difftest::ToleranceFor(CpuIsa::kAvx2, DType::kFloat32)));
}

// ---------------------------------------------------------------------------
// Summary plumbing: the JSON artifact CI uploads.
// ---------------------------------------------------------------------------

TEST(SimdDifferentialTest, DiffSummaryRoundTrips) {
  const std::string path =
      StrCat(::testing::TempDir(), "bolt_diff_summary.json");
  ASSERT_TRUE(difftest::WriteDiffSummary(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"ops\""), std::string::npos);
  EXPECT_NE(json.find("\"isa\""), std::string::npos);
  EXPECT_NE(json.find("\"gemm\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bolt
