// Tests for split-K GEMM: functional equivalence with the single-pass
// kernel, validity rules, timing behaviour on deep-K problems, candidate
// enumeration, and cache round-trips including split-K configs.

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "cutlite/gemm.h"
#include "profiler/profiler.h"

namespace bolt {
namespace cutlite {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Tensor t(TensorDesc(DType::kFloat16, {rows, cols}, Layout::kRowMajor));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.3f);
  t.Quantize();
  return t;
}

KernelConfig ConfigWithSplitK(int split_k) {
  KernelConfig c;
  c.threadblock = GemmShape(64, 64, 32);
  c.warp = GemmShape(32, 32, 32);
  c.instruction = GemmShape(16, 8, 8);
  c.split_k = split_k;
  return c;
}

TEST(SplitKTest, NameEncodesSlices) {
  EXPECT_EQ(ConfigWithSplitK(4).Name("gemm"),
            "cutlite_tensorop_h1688gemm_64x64_32x2_tn_align8_splitk4");
  EXPECT_EQ(ConfigWithSplitK(1).Name("gemm"),
            "cutlite_tensorop_h1688gemm_64x64_32x2_tn_align8");
}

TEST(SplitKTest, ValidityRules) {
  EXPECT_TRUE(ConfigWithSplitK(8).Validate(kT4).ok());
  EXPECT_FALSE(ConfigWithSplitK(0).Validate(kT4).ok());
  EXPECT_FALSE(ConfigWithSplitK(64).Validate(kT4).ok());
  // Slices must hold at least one ThreadBlock_K chunk of the problem.
  GemmKernel too_deep(GemmCoord(64, 64, 64), ConfigWithSplitK(4),
                      EpilogueSpec::Linear());
  EXPECT_FALSE(too_deep.CanImplement(kT4).ok());
  GemmKernel fine(GemmCoord(64, 64, 1024), ConfigWithSplitK(4),
                  EpilogueSpec::Linear());
  EXPECT_TRUE(fine.CanImplement(kT4).ok());
}

TEST(SplitKTest, FunctionalEquivalenceWithSinglePass) {
  const GemmCoord p(48, 32, 256);
  Tensor a = RandomMatrix(p.m, p.k, 61);
  Tensor w = RandomMatrix(p.n, p.k, 62);
  GemmArguments args;
  args.a = &a;
  args.w = &w;

  GemmKernel single(p, ConfigWithSplitK(1), EpilogueSpec::Linear());
  auto base = single.Run(args);
  ASSERT_TRUE(base.ok());
  for (int sk : {2, 4, 8}) {
    GemmKernel split(p, ConfigWithSplitK(sk), EpilogueSpec::Linear());
    auto out = split.Run(args);
    ASSERT_TRUE(out.ok()) << "split_k=" << sk;
    // FP32 partial sums differ from sequential accumulation only by
    // rounding; after the FP16 store they should be within one ulp.
    EXPECT_LE(out.value().MaxAbsDiff(base.value()), 2e-2f)
        << "split_k=" << sk;
  }
}

TEST(SplitKTest, EpilogueRunsAfterReduction) {
  const GemmCoord p(32, 16, 128);
  Tensor a = RandomMatrix(p.m, p.k, 63);
  Tensor w = RandomMatrix(p.n, p.k, 64);
  Tensor bias(TensorDesc(DType::kFloat16, {p.n}, Layout::kRowMajor));
  Rng rng(65);
  rng.FillNormal(bias.data(), 0.3f);
  bias.Quantize();
  GemmArguments args;
  args.a = &a;
  args.w = &w;
  args.bias = &bias;

  const auto epi = EpilogueSpec::WithActivation(ActivationKind::kRelu);
  GemmKernel single(p, ConfigWithSplitK(1), epi);
  GemmKernel split(p, ConfigWithSplitK(4), epi);
  auto base = single.Run(args);
  auto out = split.Run(args);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out.value().MaxAbsDiff(base.value()), 2e-2f);
}

TEST(SplitKTest, WinsOnSmallMnDeepK) {
  // One output tile, very deep K: only split-K fills the SMs.
  const GemmCoord p(64, 64, 65536);
  GemmKernel single(p, ConfigWithSplitK(1), EpilogueSpec::Linear());
  GemmKernel split(p, ConfigWithSplitK(8), EpilogueSpec::Linear());
  EXPECT_LT(split.EstimateUs(kT4), single.EstimateUs(kT4));
}

TEST(SplitKTest, LosesOnLargeProblems) {
  // The reduction-pass traffic outweighs any occupancy benefit when the
  // grid is already full.
  const GemmCoord p(4096, 4096, 4096);
  KernelConfig base;
  base.threadblock = GemmShape(128, 128, 32);
  base.warp = GemmShape(64, 64, 32);
  KernelConfig sk = base;
  sk.split_k = 8;
  GemmKernel single(p, base, EpilogueSpec::Linear());
  GemmKernel split(p, sk, EpilogueSpec::Linear());
  EXPECT_GT(split.EstimateUs(kT4), single.EstimateUs(kT4));
}

TEST(SplitKTest, CandidatesIncludeSplitKForDeepProblems) {
  bool found = false;
  for (const auto& c :
       EnumerateGemmCandidates(kT4, GemmCoord(128, 128, 32768))) {
    if (c.split_k > 1) found = true;
  }
  EXPECT_TRUE(found);
  // But not for well-shaped large problems.
  for (const auto& c :
       EnumerateGemmCandidates(kT4, GemmCoord(4096, 4096, 4096))) {
    EXPECT_EQ(c.split_k, 1);
  }
}

TEST(SplitKTest, ProfilerPicksSplitKWhereItWins) {
  Profiler prof(kT4);
  auto r = prof.ProfileGemm(GemmCoord(64, 64, 65536),
                            EpilogueSpec::Linear());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().config.split_k, 1);
}

TEST(CacheSerializationTest, RoundTripsConfigsIncludingSplitK) {
  Profiler prof(kT4);
  ASSERT_TRUE(prof.ProfileGemm(GemmCoord(64, 64, 65536),
                               EpilogueSpec::Linear())
                  .ok());
  ASSERT_TRUE(prof.ProfileGemm(GemmCoord(1280, 3072, 768),
                               EpilogueSpec::Linear())
                  .ok());
  std::ostringstream out;
  ASSERT_TRUE(prof.SaveCache(out).ok());

  Profiler fresh(kT4);
  std::istringstream in(out.str());
  ASSERT_TRUE(fresh.LoadCache(in).ok());
  EXPECT_EQ(fresh.cache_size(), prof.cache_size());

  // Loaded entries are cache hits and charge no tuning time.
  auto hit = fresh.ProfileGemm(GemmCoord(64, 64, 65536),
                               EpilogueSpec::Linear());
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_GT(hit.value().config.split_k, 1);
  EXPECT_DOUBLE_EQ(fresh.clock().seconds(), 0.0);
}

TEST(CacheSerializationTest, RejectsMalformedRecords) {
  Profiler prof(kT4);
  std::istringstream bad1("gemm/x|1 2 3|10|5\n");
  EXPECT_FALSE(prof.LoadCache(bad1).ok());
  std::istringstream bad2("no-separators-at-all\n");
  EXPECT_FALSE(prof.LoadCache(bad2).ok());
  std::istringstream bad3(
      "gemm/x|64 64 32 32 32 32 16 8 8 2 4 8 8 8 1|-5|3\n");
  EXPECT_FALSE(prof.LoadCache(bad3).ok());
  // Comments and blank lines are fine.
  std::istringstream ok("# header\n\n");
  EXPECT_TRUE(prof.LoadCache(ok).ok());
}

}  // namespace
}  // namespace cutlite
}  // namespace bolt
