// Property sweeps over the analytical timing model: for a large grid of
// problems and configs, the model must produce finite, positive, physics-
// respecting estimates.  These invariants are what make the relative
// comparisons in every bench trustworthy.

#include <gtest/gtest.h>

#include <cmath>

#include "cutlite/conv.h"
#include "cutlite/gemm.h"
#include "profiler/candidates.h"

namespace bolt {
namespace cutlite {
namespace {

const DeviceSpec kT4 = DeviceSpec::TeslaT4();
const DeviceSpec kA100 = DeviceSpec::A100();

struct GemmSweepCase {
  int64_t m, n, k;
};

class GemmTimingSweep : public ::testing::TestWithParam<GemmSweepCase> {};

TEST_P(GemmTimingSweep, PhysicalInvariantsHoldForEveryCandidate) {
  const GemmSweepCase& p = GetParam();
  const GemmCoord coord(p.m, p.n, p.k);
  for (const DeviceSpec* spec : {&kT4, &kA100}) {
    for (const KernelConfig& c : EnumerateGemmCandidates(*spec, coord)) {
      GemmKernel kernel(coord, c, EpilogueSpec::Linear());
      if (!kernel.CanImplement(*spec).ok()) continue;
      const KernelTiming t = kernel.Estimate(*spec);

      // Finite, positive, composed consistently.
      ASSERT_TRUE(std::isfinite(t.total_us)) << c.Name();
      EXPECT_GT(t.total_us, 0.0) << c.Name();
      EXPECT_GE(t.mainloop_us,
                std::max(t.compute_us, t.memory_us) - 1e-9)
          << c.Name();
      EXPECT_NEAR(t.total_us,
                  t.mainloop_us + t.epilogue_us + t.launch_us, 1e-9)
          << c.Name();

      // Utilization is a fraction of peak.
      EXPECT_GT(t.utilization, 0.0) << c.Name();
      EXPECT_LE(t.utilization, 1.0) << c.Name();

      // Achieved throughput can never exceed the hardware peak.
      const double tflops = coord.flops() / t.total_us / 1e6;
      EXPECT_LE(tflops, spec->tensor_tflops_fp16 * 1.0001)
          << c.Name() << " on " << spec->name;

      // DRAM traffic at least covers the output write (and at most the
      // naive re-read of both operands by every tile).
      EXPECT_GE(t.dram_bytes, 2.0 * p.m * p.n * 0.99) << c.Name();

      // Resources were accepted by the occupancy model.
      EXPECT_GE(t.ctas_per_sm, 1) << c.Name();
      EXPECT_GE(t.cta_count, 1) << c.Name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTimingSweep,
    ::testing::Values(GemmSweepCase{64, 64, 64},
                      GemmSweepCase{128, 128, 32768},
                      GemmSweepCase{1280, 768, 768},
                      GemmSweepCase{1280, 3072, 768},
                      GemmSweepCase{4096, 4096, 4096},
                      GemmSweepCase{16384, 64, 256},
                      GemmSweepCase{128320, 32, 96},
                      GemmSweepCase{100352, 64, 576},
                      GemmSweepCase{2464, 8, 8},
                      GemmSweepCase{32, 1000, 25088}));

TEST(GemmTimingMonotonicity, LatencyGrowsWithM) {
  KernelConfig c;
  c.threadblock = GemmShape(128, 128, 32);
  c.warp = GemmShape(64, 64, 32);
  double prev = 0.0;
  for (int64_t m = 512; m <= 65536; m *= 4) {
    GemmKernel k(GemmCoord(m, 512, 512), c, EpilogueSpec::Linear());
    const double us = k.EstimateUs(kT4);
    EXPECT_GT(us, prev) << "M=" << m;
    prev = us;
  }
}

TEST(GemmTimingMonotonicity, A100NeverSlowerThanT4) {
  // Strictly more of everything: same kernel family must run faster.
  for (const auto& p :
       {GemmCoord(4096, 4096, 4096), GemmCoord(1280, 3072, 768),
        GemmCoord(16384, 64, 256)}) {
    const double t4 = VendorPeakGemm(kT4, p).us;
    const double a100 = VendorPeakGemm(kA100, p).us;
    EXPECT_LT(a100, t4) << p.ToString();
  }
}

struct ConvSweepCase {
  int64_t n, hw, c, k, rs, stride, pad;
};

class ConvTimingSweep : public ::testing::TestWithParam<ConvSweepCase> {};

TEST_P(ConvTimingSweep, PhysicalInvariantsHold) {
  const ConvSweepCase& cc = GetParam();
  ConvProblem p;
  p.n = cc.n;
  p.h = p.w = cc.hw;
  p.c = cc.c;
  p.k = cc.k;
  p.r = p.s = cc.rs;
  p.stride_h = p.stride_w = cc.stride;
  p.pad_h = p.pad_w = cc.pad;

  int feasible = 0;
  for (const KernelConfig& c : EnumerateConvCandidates(kT4, p)) {
    Conv2dKernel kernel(p, c, EpilogueSpec::Linear());
    if (!kernel.CanImplement(kT4).ok()) continue;
    ++feasible;
    const KernelTiming t = kernel.Estimate(kT4);
    ASSERT_TRUE(std::isfinite(t.total_us)) << c.Name();
    EXPECT_GT(t.total_us, 0.0);
    // Effective TFLOPS bounded by peak.
    EXPECT_LE(p.flops() / t.total_us / 1e6,
              kT4.tensor_tflops_fp16 * 1.0001)
        << c.Name();
    // Traffic covers at least the output tensor.
    EXPECT_GE(t.dram_bytes, 0.99 * p.output_bytes()) << c.Name();
  }
  EXPECT_GT(feasible, 0) << "no feasible kernel for the sweep case";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvTimingSweep,
    ::testing::Values(ConvSweepCase{32, 56, 64, 64, 3, 1, 1},
                      ConvSweepCase{32, 224, 8, 64, 7, 2, 3},
                      ConvSweepCase{32, 7, 512, 512, 3, 1, 1},
                      ConvSweepCase{1, 14, 256, 256, 1, 1, 0},
                      ConvSweepCase{32, 20, 46, 32, 5, 1, 2},
                      ConvSweepCase{128, 14, 46, 32, 5, 1, 0},
                      ConvSweepCase{8, 112, 48, 48, 3, 2, 1}));

TEST(ConvTimingMonotonicity, LatencyGrowsWithBatch) {
  KernelConfig c;
  c.threadblock = GemmShape(128, 64, 32);
  c.warp = GemmShape(64, 32, 32);
  double prev = 0.0;
  for (int64_t batch = 1; batch <= 64; batch *= 4) {
    ConvProblem p;
    p.n = batch;
    p.h = p.w = 28;
    p.c = p.k = 128;
    p.r = p.s = 3;
    p.pad_h = p.pad_w = 1;
    Conv2dKernel k(p, c, EpilogueSpec::Linear());
    const double us = k.EstimateUs(kT4);
    EXPECT_GT(us, prev) << "batch " << batch;
    prev = us;
  }
}

TEST(ConvTimingMonotonicity, MoreFilterTapsCostMore) {
  KernelConfig c;
  c.threadblock = GemmShape(128, 64, 32);
  c.warp = GemmShape(64, 32, 32);
  double prev = 0.0;
  for (int64_t rs : {1, 3, 5}) {
    ConvProblem p;
    p.n = 32;
    p.h = p.w = 28;
    p.c = p.k = 64;
    p.r = p.s = rs;
    p.pad_h = p.pad_w = rs / 2;
    Conv2dKernel k(p, c, EpilogueSpec::Linear());
    const double us = k.EstimateUs(kT4);
    EXPECT_GT(us, prev) << "filter " << rs;
    prev = us;
  }
}

TEST(VendorOracleProperty, NeverBeatenByProfilerOnSharedSpace) {
  // The oracle searches a superset lattice; the profiler's pruned pick
  // must never be more than marginally better (both use the same model).
  for (const auto& p :
       {GemmCoord(1280, 768, 768), GemmCoord(4096, 4096, 4096)}) {
    const double oracle = VendorPeakGemm(kT4, p).us;
    for (const KernelConfig& c : EnumerateGemmCandidates(kT4, p)) {
      GemmKernel k(p, c, EpilogueSpec::Linear());
      if (!k.CanImplement(kT4).ok()) continue;
      // Split-K candidates may legitimately beat the (split-K-free)
      // oracle sweep; exclude them from this containment property.
      if (c.split_k > 1) continue;
      EXPECT_GE(k.EstimateUs(kT4), oracle * 0.98) << c.Name();
    }
  }
}

}  // namespace
}  // namespace cutlite
}  // namespace bolt
