// Tests for the pipeline observability layer: the Chrome trace_event JSON
// schema of the trace sink (golden-file style, validated structurally),
// the zero-overhead-when-disabled contract, and the metrics registry.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bolt/engine.h"
#include "common/fileio.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "models/zoo.h"

namespace bolt {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator: enough of RFC 8259 to prove the emitted trace is
// well-formed (objects, arrays, strings with escapes, numbers, literals).

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}
  bool Valid() {
    Skip();
    if (!ParseValue()) return false;
    Skip();
    return pos_ == s_.size();
  }

 private:
  void Skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseString() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Eat('"');
  }
  bool ParseNumber() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool ParseObject() {
    if (!Eat('{')) return false;
    Skip();
    if (Eat('}')) return true;
    for (;;) {
      Skip();
      if (!ParseString()) return false;
      Skip();
      if (!Eat(':')) return false;
      if (!ParseValue()) return false;
      Skip();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }
  bool ParseArray() {
    if (!Eat('[')) return false;
    Skip();
    if (Eat(']')) return true;
    for (;;) {
      if (!ParseValue()) return false;
      Skip();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }
  bool ParseValue() {
    Skip();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// One parsed trace event (the sink writes one event object per line).
struct Ev {
  char ph = '?';
  double ts = 0.0;
  int pid = -1;
  int tid = -1;
  std::string name;
};

std::vector<Ev> ParseEvents(const std::string& json) {
  std::vector<Ev> evs;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    const auto ph_pos = line.find("\"ph\":\"");
    if (ph_pos == std::string::npos) continue;
    Ev e;
    e.ph = line[ph_pos + 6];
    const auto name_pos = line.find("\"name\":\"");
    EXPECT_NE(name_pos, std::string::npos) << line;
    const auto name_end = line.find('"', name_pos + 8);
    e.name = line.substr(name_pos + 8, name_end - (name_pos + 8));
    const auto ts_pos = line.find("\"ts\":");
    EXPECT_NE(ts_pos, std::string::npos) << line;
    EXPECT_EQ(std::sscanf(line.c_str() + ts_pos,
                          "\"ts\":%lf,\"pid\":%d,\"tid\":%d", &e.ts, &e.pid,
                          &e.tid),
              3)
        << line;
    evs.push_back(std::move(e));
  }
  return evs;
}

TEST(TraceTest, RepVggTraceIsSchemaValidAndAccountsForTuningTime) {
  const std::string path = testing::TempDir() + "bolt_trace_repvgg.json";
#ifdef __unix__
  unsetenv("BOLT_TRACE");  // the test owns the trace destination
#endif
  trace::TraceSink::Global().Stop();  // clean slate

  models::RepVggOptions mopts;
  mopts.batch = 8;
  mopts.image_size = 32;
  mopts.num_classes = 10;
  auto a0 = models::BuildRepVgg(models::RepVggVariant::kA0, mopts);
  ASSERT_TRUE(a0.ok());

  CompileOptions opts;
  opts.profiler_cost.num_threads = 4;
  opts.trace_path = path;
  auto engine = Engine::Compile(*a0, opts);
  ASSERT_TRUE(engine.ok());
  const TuningReport& report = engine->tuning_report();
  trace::TraceSink::Global().Stop();

  // Compile flushed the trace; it must be well-formed JSON.
  std::string json;
  ASSERT_TRUE(ReadFile(path, &json).ok());
  EXPECT_TRUE(JsonValidator(json).Valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"boltMetrics\""), std::string::npos);
  EXPECT_NE(json.find("bolt.tuning (simulated)"), std::string::npos);

  const std::vector<Ev> evs = ParseEvents(json);
  ASSERT_FALSE(evs.empty());

  // Schema checks: known phases, globally non-decreasing timestamps, and
  // strict B/E stack discipline per (pid, tid) lane.
  double prev_ts = 0.0;
  std::map<std::pair<int, int>, std::vector<Ev>> stacks;
  std::set<int> tuning_lanes;
  double runtime_total_us = 0.0;
  double tuning_max_end_us = 0.0;
  for (const Ev& e : evs) {
    ASSERT_TRUE(e.ph == 'B' || e.ph == 'E' || e.ph == 'M') << e.ph;
    if (e.ph == 'M') continue;
    EXPECT_GE(e.ts, prev_ts) << e.name;
    prev_ts = e.ts;
    EXPECT_TRUE(e.pid == trace::kPidCompile || e.pid == trace::kPidTuning ||
                e.pid == trace::kPidRuntime)
        << e.pid;
    auto& stack = stacks[{e.pid, e.tid}];
    if (e.ph == 'B') {
      stack.push_back(e);
      continue;
    }
    ASSERT_FALSE(stack.empty()) << "unmatched E for " << e.name;
    EXPECT_EQ(stack.back().name, e.name);
    EXPECT_LE(stack.back().ts, e.ts);
    if (e.pid == trace::kPidRuntime) {
      runtime_total_us += e.ts - stack.back().ts;
    }
    if (e.pid == trace::kPidTuning) {
      tuning_lanes.insert(e.tid);
      tuning_max_end_us = std::max(tuning_max_end_us, e.ts);
    }
    stack.pop_back();
  }
  for (const auto& [lane, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unmatched B on pid " << lane.first
                               << " tid " << lane.second;
  }

  // Tuning lanes mirror the profiler's worker ids exactly.
  EXPECT_EQ(tuning_lanes, (std::set<int>{0, 1, 2, 3}));

  // The simulated launch timeline sums to the reported end-to-end latency
  // (ts serialized at 0.001us granularity, hence the tolerance).
  EXPECT_NEAR(runtime_total_us, engine->EstimatedLatencyUs(), 1.0);

  // The tuning lanes account for (at least) 95% of the reported simulated
  // tuning seconds — nothing the clock charged is missing from the trace.
  EXPECT_GE(tuning_max_end_us, 0.95 * report.seconds * 1e6);
  EXPECT_GT(report.seconds, 0.0);

  std::remove(path.c_str());
}

TEST(TraceTest, DisabledSinkCollectsNothing) {
  trace::TraceSink& sink = trace::TraceSink::Global();
  sink.Stop();
  ASSERT_FALSE(sink.enabled());

  // Exercise every instrumented layer with tracing off.
  Profiler prof(DeviceSpec::TeslaT4());
  ASSERT_TRUE(
      prof.ProfileGemm(cutlite::GemmCoord(256, 256, 256),
                       cutlite::EpilogueSpec::Linear())
          .ok());
  sink.EmitSpan(trace::kPidCompile, 0, "ignored", "test", 0.0, 1.0);
  { trace::Span span(trace::kPidCompile, "ignored", "test"); }
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_FALSE(sink.Flush().ok());
}

TEST(TraceTest, StartResetsAndStopDiscards) {
  trace::TraceSink& sink = trace::TraceSink::Global();
  sink.Start(testing::TempDir() + "bolt_trace_reset.json");
  sink.EmitSpan(trace::kPidCompile, 0, "a", "test", 0.0, 1.0);
  EXPECT_EQ(sink.event_count(), 2u);
  sink.Start(testing::TempDir() + "bolt_trace_reset2.json");
  EXPECT_EQ(sink.event_count(), 0u);  // restart resets the buffer
  sink.Stop();
  EXPECT_EQ(sink.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CountersAreThreadSafeUnderParallelFor) {
  metrics::Counter& c =
      metrics::Registry::Global().GetCounter("test.parallel_counter");
  c.Reset();
  ThreadPool pool(8);
  pool.ParallelFor(10000, [&](int64_t) { c.Increment(); });
  EXPECT_EQ(c.value(), 10000);
  // Same name, same instrument: addresses are stable.
  EXPECT_EQ(&c, &metrics::Registry::Global().GetCounter(
                    "test.parallel_counter"));
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  metrics::Histogram& h =
      metrics::Registry::Global().GetHistogram("test.hist");
  h.Reset();
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 0
  h.Observe(3.0);   // bucket 2: (2, 4]
  h.Observe(1e12);  // overflow -> last bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 3.0 + 1e12);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(metrics::Histogram::kNumBuckets - 1), 1);
}

TEST(MetricsTest, DumpJsonIsValidJson) {
  metrics::Registry::Global().GetCounter("test.dump_counter").Increment(7);
  metrics::Registry::Global().GetHistogram("test.dump_hist").Observe(42.0);
  const std::string json = metrics::Registry::Global().DumpJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.dump_counter\":7"), std::string::npos) << json;
}

TEST(MetricsTest, DumpJsonEscapesHostileMetricNames) {
  // A quote or backslash in a metric name used to be interpolated raw
  // into the document, corrupting it.  Names reach the registry from
  // workload descriptions, so hostile characters are reachable in
  // practice.
  metrics::Registry::Global()
      .GetCounter("test.hostile.\"quote\\back\nnewline")
      .Increment();
  metrics::Registry::Global()
      .GetHistogram("test.hostile.hist\"\\")
      .Observe(1.0);
  const std::string json = metrics::Registry::Global().DumpJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("test.hostile.\\\"quote\\\\back"), std::string::npos)
      << json;
}

TEST(MetricsTest, HistogramRejectsNonFiniteObservations) {
  // NaN used to poison sum_ forever (NaN + x == NaN) and serialize as
  // bare `nan`/`inf`, which is not JSON.
  metrics::Histogram& h =
      metrics::Registry::Global().GetHistogram("test.nonfinite_hist");
  h.Reset();
  h.Observe(2.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  h.Observe(3.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  const std::string json = metrics::Registry::Global().DumpJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(MetricsTest, ProfilerCountsCacheHitsAndMisses) {
  metrics::Counter& hits =
      metrics::Registry::Global().GetCounter("profiler.cache_hits");
  metrics::Counter& misses =
      metrics::Registry::Global().GetCounter("profiler.cache_misses");
  const int64_t hits_before = hits.value();
  const int64_t misses_before = misses.value();

  Profiler prof(DeviceSpec::TeslaT4());
  const cutlite::GemmCoord p(512, 512, 512);
  ASSERT_TRUE(prof.ProfileGemm(p, cutlite::EpilogueSpec::Linear()).ok());
  ASSERT_TRUE(prof.ProfileGemm(p, cutlite::EpilogueSpec::Linear()).ok());
  EXPECT_EQ(misses.value(), misses_before + 1);
  EXPECT_EQ(hits.value(), hits_before + 1);
}

}  // namespace
}  // namespace bolt
