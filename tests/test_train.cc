// Tests for the training substrate: gradient correctness (numerical
// differentiation), optimization behaviour, and the RepVGG train-block /
// re-parameterization bridge.

#include <gtest/gtest.h>

#include <cmath>

#include "ir/interpreter.h"
#include "models/repvgg_reparam.h"
#include "train/trainer.h"

namespace bolt {
namespace train {
namespace {

/// Central-difference gradient check for one parameter entry.
double NumericalGrad(Layer& layer, const Batch& x, Param& param,
                     size_t index, const Batch& dy) {
  const float eps = 1e-3f;
  const float saved = param.value[index];
  param.value[index] = saved + eps;
  Batch up = layer.Forward(x);
  param.value[index] = saved - eps;
  Batch down = layer.Forward(x);
  param.value[index] = saved;
  double diff = 0.0;
  for (size_t i = 0; i < up.v.size(); ++i) {
    diff += static_cast<double>(up.v[i] - down.v[i]) * dy.v[i];
  }
  return diff / (2 * eps);
}

TEST(GradCheckTest, Conv2dWeightsAndBias) {
  Rng rng(1);
  Conv2dLayer conv(3, 4, 3, 1, 1, rng);
  Batch x(2, 5, 5, 3);
  rng.FillNormal(x.v, 0.5f);
  Batch y = conv.Forward(x);
  Batch dy(y.n, y.h, y.w, y.c);
  rng.FillNormal(dy.v, 0.5f);
  conv.Backward(dy);

  for (size_t idx : {0u, 7u, 35u, 100u}) {
    const double numeric = NumericalGrad(conv, x, conv.weight(), idx, dy);
    EXPECT_NEAR(conv.weight().grad[idx], numeric, 2e-2)
        << "weight index " << idx;
  }
  const double bias_numeric = NumericalGrad(conv, x, conv.bias(), 1, dy);
  EXPECT_NEAR(conv.bias().grad[1], bias_numeric, 2e-2);
}

TEST(GradCheckTest, Conv2dInputGradient) {
  Rng rng(2);
  Conv2dLayer conv(2, 3, 3, 2, 1, rng);  // strided
  Batch x(1, 6, 6, 2);
  rng.FillNormal(x.v, 0.5f);
  Batch y = conv.Forward(x);
  Batch dy(y.n, y.h, y.w, y.c);
  rng.FillNormal(dy.v, 0.5f);
  Batch dx = conv.Backward(dy);

  // Perturb one input element, check loss change against dx.
  const float eps = 1e-3f;
  for (size_t idx : {0u, 13u, 41u}) {
    Batch xp = x;
    xp.v[idx] += eps;
    Batch yp = conv.Forward(xp);
    Batch xm = x;
    xm.v[idx] -= eps;
    Batch ym = conv.Forward(xm);
    double numeric = 0.0;
    for (size_t i = 0; i < yp.v.size(); ++i) {
      numeric += static_cast<double>(yp.v[i] - ym.v[i]) * dy.v[i];
    }
    numeric /= 2 * eps;
    EXPECT_NEAR(dx.v[idx], numeric, 2e-2) << "input index " << idx;
  }
}

TEST(GradCheckTest, DenseLayer) {
  Rng rng(3);
  DenseLayer fc(12, 5, rng);
  Batch x(3, 1, 1, 12);
  rng.FillNormal(x.v, 0.5f);
  Batch y = fc.Forward(x);
  Batch dy(3, 1, 1, 5);
  rng.FillNormal(dy.v, 0.5f);
  fc.Backward(dy);
  auto params = fc.Params();
  for (size_t idx : {0u, 17u, 59u}) {
    const double numeric = NumericalGrad(fc, x, *params[0], idx, dy);
    EXPECT_NEAR(params[0]->grad[idx], numeric, 1e-2);
  }
}

TEST(GradCheckTest, RepVggTrainBlock) {
  Rng rng(4);
  RepVggTrainBlock block(3, 3, 1, ActivationKind::kGelu, rng);
  EXPECT_TRUE(block.has_identity());
  Batch x(1, 4, 4, 3);
  rng.FillNormal(x.v, 0.5f);
  Batch y = block.Forward(x);
  Batch dy(y.n, y.h, y.w, y.c);
  rng.FillNormal(dy.v, 0.5f);
  block.Backward(dy);
  auto params = block.Params();
  const double numeric =
      NumericalGrad(block, x, *params[0], 5, dy);  // 3x3 branch weight
  EXPECT_NEAR(params[0]->grad[5], numeric, 2e-2);
  const double numeric1 =
      NumericalGrad(block, x, *params[2], 2, dy);  // 1x1 branch weight
  EXPECT_NEAR(params[2]->grad[2], numeric1, 2e-2);
}

TEST(SoftmaxCeTest, LossAndGradient) {
  Batch logits(2, 1, 1, 3);
  logits.v = {2.0f, 1.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  std::vector<int> labels = {0, 2};
  Batch dlogits;
  const double loss = SoftmaxCrossEntropy(logits, labels, dlogits);
  // Sample 2 is uniform: loss contribution log(3).
  EXPECT_GT(loss, 0.0);
  // Gradient rows sum to zero.
  for (int n = 0; n < 2; ++n) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += dlogits.at(n, 0, 0, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
  // True-class gradient is negative.
  EXPECT_LT(dlogits.at(0, 0, 0, 0), 0.0f);
  EXPECT_LT(dlogits.at(1, 0, 0, 2), 0.0f);
}

TEST(SgdTest, MomentumDescendsQuadratic) {
  // Minimize f(w) = 0.5*w^2 by feeding grad = w.
  Param p(1);
  p.value[0] = 10.0f;
  Sgd sgd(0.1, 0.9);
  for (int i = 0; i < 100; ++i) {
    p.grad[0] = p.value[0];
    sgd.Step({&p});
  }
  EXPECT_NEAR(p.value[0], 0.0f, 0.5f);
}

TEST(DatasetTest, DeterministicAndBalancedEnough) {
  Dataset a = MakeSyntheticDataset(200, 8, 3, 4, 99);
  Dataset b = MakeSyntheticDataset(200, 8, 3, 4, 99);
  ASSERT_EQ(a.labels, b.labels);
  // Every class appears (the teacher is not degenerate).
  std::vector<int> counts(4, 0);
  for (int label : a.labels) ++counts[label];
  for (int c = 0; c < 4; ++c) EXPECT_GT(counts[c], 5) << "class " << c;
}

TEST(TrainingTest, LossDecreasesAndBeatsChance) {
  Dataset train_set = MakeSyntheticDataset(256, 8, 3, 4, 7);
  Dataset test_set = MakeSyntheticDataset(128, 8, 3, 4, 8);
  Sequential model = BuildStudent(train_set, {8, 16}, {1, 1},
                                  ActivationKind::kRelu, false, 1);
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 32;
  config.lr = 0.05;
  TrainResult r = Train(model, train_set, test_set, config);
  EXPECT_LT(r.loss_curve.back(), r.loss_curve.front());
  EXPECT_GT(r.test_accuracy, 0.40);  // chance = 0.25
}

TEST(TrainingTest, AugmentedStudentHasMoreParams) {
  Dataset data = MakeSyntheticDataset(8, 8, 3, 4, 7);
  Sequential base = BuildStudent(data, {8, 16}, {1, 1},
                                 ActivationKind::kRelu, false, 1);
  Sequential aug = BuildStudent(data, {8, 16}, {1, 1},
                                ActivationKind::kRelu, true, 1);
  EXPECT_GT(aug.num_params(), base.num_params());
}

TEST(ReparamBridgeTest, TrainedBlockCollapsesExactly) {
  // Train-form block (no BN, bias folded in conv) must equal the single
  // 3x3 conv built from w3 + pad(w1) + identity.
  Rng rng(11);
  RepVggTrainBlock block(4, 4, 1, ActivationKind::kIdentity, rng);
  Batch x(1, 5, 5, 4);
  rng.FillNormal(x.v, 0.5f);
  Batch branch_sum = block.Forward(x);

  // Build the fused kernel: identity BN-free variant.
  const auto& w3 = block.branch3x3().weight().value;
  const auto& b3 = block.branch3x3().bias().value;
  const auto& w1 = block.branch1x1().weight().value;
  const auto& b1 = block.branch1x1().bias().value;

  Tensor w3t(TensorDesc(DType::kFloat32, {4, 3, 3, 4}),
             std::vector<float>(w3));
  Tensor w1t(TensorDesc(DType::kFloat32, {4, 1, 1, 4}),
             std::vector<float>(w1));
  Tensor fused = models::Pad1x1To3x3(w1t);
  for (int64_t i = 0; i < fused.num_elements(); ++i) {
    fused.at(i) += w3t.at(i);
  }
  Tensor id = models::Identity3x3Kernel(4, DType::kFloat32);
  for (int64_t i = 0; i < fused.num_elements(); ++i) {
    fused.at(i) += id.at(i);
  }
  std::vector<float> bias(4);
  for (int i = 0; i < 4; ++i) bias[i] = b3[i] + b1[i];

  Tensor xt(TensorDesc(DType::kFloat32, {1, 5, 5, 4}, Layout::kNHWC),
            std::vector<float>(x.v));
  Conv2dAttrs pad1;
  pad1.pad_h = pad1.pad_w = 1;
  Tensor got = refop::Conv2d(xt, fused, pad1);
  Tensor bias_t(TensorDesc(DType::kFloat32, {4}),
                std::vector<float>(bias));
  got = refop::BiasAdd(got, bias_t);

  float max_diff = 0.0f;
  for (int64_t i = 0; i < got.num_elements(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(got.at(i) - branch_sum.v[i]));
  }
  EXPECT_LE(max_diff, 1e-4f);
}

}  // namespace
}  // namespace train
}  // namespace bolt
