// Tests for the tuning-cache persistence format (save/load round-trip,
// malformed-record rejection, arch-header semantics) and for the parallel
// profiler: determinism against the serial baseline and the wall-clock /
// device-seconds accounting split.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "bolt/engine.h"
#include "common/rng.h"
#include "cpukernels/backend.h"
#include "cpukernels/cpuinfo.h"
#include "cpukernels/tuned.h"
#include "models/workloads.h"
#include "models/zoo.h"
#include "profiler/profiler.h"

namespace bolt {
namespace {

using cutlite::EpilogueSpec;
using cutlite::GemmCoord;

const DeviceSpec kT4 = DeviceSpec::TeslaT4();

/// Profiles a randomized-but-valid workload set so the cache has a spread
/// of configs (different tile shapes, alignments, split-k).
void PopulateCache(Profiler& prof, uint64_t seed, int workloads) {
  Rng rng(seed);
  for (int i = 0; i < workloads; ++i) {
    const GemmCoord p(64 * rng.Uniform(1, 40), 64 * rng.Uniform(1, 40),
                      2 * rng.Uniform(8, 512));
    auto r = prof.ProfileGemm(p, EpilogueSpec::Linear());
    ASSERT_TRUE(r.ok()) << p.ToString();
  }
}

TEST(TuningCacheTest, SaveLoadRoundTripIsIdentical) {
  // Property: save -> load -> save must reproduce the byte-identical
  // cache for any profiled workload set.
  for (uint64_t seed : {7u, 21u, 99u}) {
    Profiler session1(kT4);
    PopulateCache(session1, seed, 12);
    std::ostringstream saved;
    ASSERT_TRUE(session1.SaveCache(saved).ok());

    Profiler session2(kT4);
    std::istringstream in(saved.str());
    ASSERT_TRUE(session2.LoadCache(in).ok());
    EXPECT_EQ(session2.cache_size(), session1.cache_size());
    std::ostringstream resaved;
    ASSERT_TRUE(session2.SaveCache(resaved).ok());
    EXPECT_EQ(saved.str(), resaved.str()) << "seed " << seed;
  }
}

TEST(TuningCacheTest, LoadedEntriesAreExactCacheHits) {
  Profiler session1(kT4);
  const GemmCoord p(1280, 3072, 768);
  auto first = session1.ProfileGemm(p, EpilogueSpec::Linear());
  ASSERT_TRUE(first.ok());
  std::ostringstream saved;
  ASSERT_TRUE(session1.SaveCache(saved).ok());

  Profiler session2(kT4);
  std::istringstream in(saved.str());
  ASSERT_TRUE(session2.LoadCache(in).ok());
  auto warm = session2.ProfileGemm(p, EpilogueSpec::Linear());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_TRUE(warm.value().config == first.value().config);
  EXPECT_DOUBLE_EQ(warm.value().us, first.value().us);
}

// ---------------------------------------------------------------------------
// Malformed-record rejection.

std::string ValidRecord() {
  return "gemm/64x64x64/linear/sm75|"
         "128 128 32 64 64 32 16 8 8 2 4 8 8 8 1|12.5|17\n";
}

TEST(TuningCacheTest, AcceptsTheValidRecord) {
  Profiler prof(kT4);
  std::istringstream in(ValidRecord());
  ASSERT_TRUE(prof.LoadCache(in).ok());
  EXPECT_EQ(prof.cache_size(), 1);
}

TEST(TuningCacheTest, RejectsInvalidSwizzleWidths) {
  // Widths outside {1,2,4,8} would cast to an invalid Swizzle enum and
  // crash SwizzleName downstream; the load must reject them.
  for (int width : {0, 3, 5, 16, -1}) {
    Profiler prof(kT4);
    std::istringstream in(StrCat(
        "gemm/64x64x64/linear/sm75|128 128 32 64 64 32 16 8 8 2 ", width,
        " 8 8 8 1|12.5|17\n"));
    Status st = prof.LoadCache(in);
    EXPECT_FALSE(st.ok()) << "width " << width;
    EXPECT_TRUE(Contains(st.message(), "swizzle")) << st.message();
    EXPECT_EQ(prof.cache_size(), 0);
  }
}

TEST(TuningCacheTest, RejectsNumericTrailingGarbage) {
  // atof/atoi-style parsing silently accepted "12.5abc"; strict parsing
  // must reject the line instead.
  const std::string config = "128 128 32 64 64 32 16 8 8 2 4 8 8 8 1";
  const struct {
    std::string latency, count;
  } cases[] = {
      {"12.5abc", "17"}, {"nope", "17"}, {"", "17"},
      {"12.5", "17abc"}, {"12.5", "0x11"}, {"12.5", ""},
  };
  for (const auto& c : cases) {
    Profiler prof(kT4);
    std::istringstream in(StrCat("gemm/a/linear/sm75|", config, "|",
                                 c.latency, "|", c.count, "\n"));
    EXPECT_FALSE(prof.LoadCache(in).ok())
        << "latency=" << c.latency << " count=" << c.count;
    EXPECT_EQ(prof.cache_size(), 0);
  }
}

TEST(TuningCacheTest, RejectsNonPositiveLatencyAndCount) {
  const std::string config = "128 128 32 64 64 32 16 8 8 2 4 8 8 8 1";
  const struct {
    std::string latency, count;
  } cases[] = {{"0", "17"}, {"-3.5", "17"}, {"12.5", "0"}, {"12.5", "-2"}};
  for (const auto& c : cases) {
    Profiler prof(kT4);
    std::istringstream in(StrCat("gemm/a/linear/sm75|", config, "|",
                                 c.latency, "|", c.count, "\n"));
    EXPECT_FALSE(prof.LoadCache(in).ok())
        << "latency=" << c.latency << " count=" << c.count;
  }
}

TEST(TuningCacheTest, RejectsMalformedConfigs) {
  const char* bad_configs[] = {
      "128 128 32",                                 // too few fields
      "128 128 32 64 64 32 16 8 8 2 4 8 8 8 x",     // non-numeric
      "128 128 32 64 64 32 16 8 8 2 4 8 8 8 1 junk",  // trailing garbage
  };
  for (const char* config : bad_configs) {
    Profiler prof(kT4);
    std::istringstream in(
        StrCat("gemm/a/linear/sm75|", config, "|12.5|17\n"));
    EXPECT_FALSE(prof.LoadCache(in).ok()) << config;
  }
}

TEST(TuningCacheTest, RejectsWrongFieldCount) {
  Profiler prof(kT4);
  std::istringstream in("gemm/a/linear/sm75|1 2 3|12.5\n");
  EXPECT_FALSE(prof.LoadCache(in).ok());
}

// ---------------------------------------------------------------------------
// CPU (`cpu/` namespace) records: golden schema, mixed round-trip with GPU
// records, and per-line rejection — a corrupt, wrong-version, or
// foreign-arch cpu line is dropped individually without failing the file,
// while GPU records keep their strict whole-file semantics.

std::string ValidCpuRecord() {
  // Provenance field (v3): 30 candidates enumerated, the ranked
  // pre-filter measured 7 of them, no transfer seed.  v4 appended the
  // prefetch flag to the block payload and admits isa 0..3; v5 appended
  // the activation layout (gemm records carry kRowMajor = 2).
  return StrCat("cpu/v5/gemm/24x16x32/t", cpukernels::DefaultNumThreads(),
                "/", cpukernels::CpuArchToken(),
                "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n");
}

TEST(CpuTuningCacheTest, MixedGpuAndCpuRoundTripIsIdentical) {
  cpukernels::ClearTunedBlocks();
  Profiler session1(kT4);
  PopulateCache(session1, 7, 6);
  CpuGemmWorkload w;
  w.m = 24;
  w.n = 16;
  w.k = 32;
  ASSERT_TRUE(session1.ProfileCpuGemm(w).ok());
  ASSERT_GT(session1.cache_size(), 0);
  ASSERT_EQ(session1.cpu_cache_size(), 1);
  std::ostringstream saved;
  ASSERT_TRUE(session1.SaveCache(saved).ok());

  Profiler session2(kT4);
  std::istringstream in(saved.str());
  ASSERT_TRUE(session2.LoadCache(in).ok());
  EXPECT_EQ(session2.cache_size(), session1.cache_size());
  EXPECT_EQ(session2.cpu_cache_size(), session1.cpu_cache_size());
  std::ostringstream resaved;
  ASSERT_TRUE(session2.SaveCache(resaved).ok());
  EXPECT_EQ(saved.str(), resaved.str());
  cpukernels::ClearTunedBlocks();
}

TEST(CpuTuningCacheTest, AcceptsTheGoldenCpuRecord) {
  cpukernels::ClearTunedBlocks();
  Profiler prof(kT4);
  std::istringstream in(ValidCpuRecord());
  ASSERT_TRUE(prof.LoadCache(in).ok());
  EXPECT_EQ(prof.cpu_cache_size(), 1);
  EXPECT_EQ(prof.cache_size(), 0);
  // Loading activates the execution registry for this thread config.
  auto hit = cpukernels::FindTunedBlockForBackend(
      cpukernels::TunedKind::kGemm, 24, 16, 32,
      cpukernels::Backend::kFastCpu);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->mc, 64);
  EXPECT_EQ(hit->kc, 256);
  EXPECT_EQ(hit->nc, 4096);
  cpukernels::ClearTunedBlocks();
}

TEST(CpuTuningCacheTest, BadCpuLinesAreDroppedIndividually) {
  // One valid GPU record, one valid cpu record, and a pile of bad cpu
  // lines: the load must succeed and keep exactly the two valid records.
  const std::string arch = cpukernels::CpuArchToken();
  const std::string threads =
      StrCat("t", cpukernels::DefaultNumThreads());
  const std::string bad_lines[] = {
      // superseded versions are retired rather than reinterpreted: v1
      // carried no ISA field, v2 no ranked-sweep provenance, v3 no
      // prefetch flag (and its isa range stopped at AVX2), v4 no
      // activation layout
      StrCat("cpu/v1/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0|12.5|7\n"),
      StrCat("cpu/v2/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0|12.5|7\n"),
      StrCat("cpu/v3/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0|12.5|7|30 1 0\n"),
      StrCat("cpu/v4/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0|12.5|7|30 1 0\n"),
      // unknown future version
      StrCat("cpu/v6/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n"),
      // foreign arch token
      StrCat("cpu/v5/gemm/24x16x32/", threads,
             "/cpu4x8-l1_1-l2_2-l3_3-scalar|64 256 4096 0 0 0 2|12.5|7|30 1 "
             "0\n"),
      // unknown op
      StrCat("cpu/v5/b2b/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n"),
      // malformed workload dims
      StrCat("cpu/v5/gemm/24x16/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/0x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n"),
      // malformed thread field
      StrCat("cpu/v5/gemm/24x16x32/x4/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n"),
      // invalid blockings: mc not a multiple of kMR, nc not of kNR,
      // kc < 8, unknown scheme, out-of-range isa, non-flag prefetch
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|3 256 4096 0 0 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 12 0 0 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 4 4096 0 0 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 2 0 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 4 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 -1 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 2 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 -1 2|12.5|7|30 1 0\n"),
      // invalid layouts: a gemm record must carry kRowMajor (2) — an
      // activation layout, kColMajor, kAny, or an out-of-enum value is
      // rejected; a conv record admits only NCHW (0), NHWC (1), NCHWc (5)
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 0|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 1|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 5|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 99|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/conv/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/conv/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 3|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/conv/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 4|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/conv/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 -1|12.5|7|30 1 0\n"),
      // missing layout field (a v4-shaped payload under the v5 key)
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0|12.5|7|30 1 0\n"),
      // trailing garbage / wrong field counts / bad numerics
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2 junk|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2 2|12.5|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|0|7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|-7|30 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5abc|7|30 1 0\n"),
      // malformed provenance: tried exceeding enumerated, non-flag
      // ranked/seeded, missing or garbage-laden fields
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|6 1 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 2 0\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 2\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0 junk\n"),
      StrCat("cpu/v5/gemm/24x16x32/", threads, "/", arch,
             "|64 256 4096 0 0 0 2|12.5|7|30 1 0|extra\n"),
      "cpu/v5/gemm\n",
  };
  for (const std::string& bad : bad_lines) {
    cpukernels::ClearTunedBlocks();
    Profiler prof(kT4);
    std::istringstream in(StrCat(ValidRecord(), bad, ValidCpuRecord()));
    ASSERT_TRUE(prof.LoadCache(in).ok()) << bad;
    EXPECT_EQ(prof.cache_size(), 1) << bad;
    EXPECT_EQ(prof.cpu_cache_size(), 1) << bad;
    // The bad line must not have leaked into the registry either.
    EXPECT_EQ(cpukernels::TunedBlockCount(), 1) << bad;
  }
  cpukernels::ClearTunedBlocks();
}

TEST(CpuTuningCacheTest, ForeignThreadCountLoadsButStaysDormant) {
  // Records measured under another deployment's thread count round-trip
  // through the cache but must not activate execution-time selection.
  cpukernels::ClearTunedBlocks();
  const std::string foreign = StrCat(
      "cpu/v5/gemm/24x16x32/t", cpukernels::DefaultNumThreads() + 1, "/",
      cpukernels::CpuArchToken(), "|64 256 4096 0 0 0 2|12.5|7|30 1 0\n");
  Profiler prof(kT4);
  std::istringstream in(foreign);
  ASSERT_TRUE(prof.LoadCache(in).ok());
  EXPECT_EQ(prof.cpu_cache_size(), 1);
  EXPECT_EQ(cpukernels::TunedBlockCount(), 0);
  std::ostringstream out;
  ASSERT_TRUE(prof.SaveCache(out).ok());
  EXPECT_TRUE(Contains(out.str(), foreign));  // round-trips verbatim
}

TEST(CpuTuningCacheTest, CpuLinesDoNotRelaxGpuStrictness) {
  // A valid cpu line must not rescue a malformed GPU record: GPU parsing
  // keeps its whole-file error semantics.
  Profiler prof(kT4);
  std::istringstream in(
      StrCat(ValidCpuRecord(), "gemm/a/linear/sm75|1 2 3|12.5\n"));
  EXPECT_FALSE(prof.LoadCache(in).ok());
  cpukernels::ClearTunedBlocks();
}

// ---------------------------------------------------------------------------
// Arch-header semantics: the one-time sample-program pre-generation charge
// is skipped only when the header names *exactly* this architecture.

double CompileSecondsAfterOneProfile(const std::string& header) {
  Profiler prof(kT4);  // arch "sm75"
  std::istringstream in(header + "\n");
  EXPECT_TRUE(prof.LoadCache(in).ok());
  auto r = prof.ProfileGemm(GemmCoord(512, 512, 512),
                            EpilogueSpec::Linear());
  EXPECT_TRUE(r.ok());
  return prof.clock().compile_seconds();
}

TEST(TuningCacheTest, ExactArchHeaderSkipsPregen) {
  EXPECT_DOUBLE_EQ(
      CompileSecondsAfterOneProfile("# bolt tuning cache v1 arch=sm75"),
      0.0);
}

TEST(TuningCacheTest, SupersetArchTokenDoesNotSkipPregen) {
  // "arch=sm75x" contains the substring "arch=sm75" but is a different
  // architecture; its sample programs are useless here.
  ProfilerCostModel cost;
  EXPECT_GE(CompileSecondsAfterOneProfile("# bolt tuning cache v1 arch=sm75x"),
            cost.arch_pregen_s);
  EXPECT_GE(CompileSecondsAfterOneProfile("# bolt tuning cache v1 arch=sm7"),
            cost.arch_pregen_s);
  EXPECT_GE(CompileSecondsAfterOneProfile("# arch=sm80"),
            cost.arch_pregen_s);
}

// ---------------------------------------------------------------------------
// Atomic cache persistence (SaveCacheFile): a crash mid-save or a
// concurrent reader must never observe a torn cache file — the strict
// LoadCache grammar would reject it and silently drop the whole cache.

TEST(AtomicCacheFileTest, SaveLoadFileRoundTrip) {
  const std::string path = testing::TempDir() + "bolt_cache_roundtrip.log";
  Profiler session1(kT4);
  PopulateCache(session1, 5, 8);
  ASSERT_TRUE(session1.SaveCacheFile(path).ok());

  Profiler session2(kT4);
  ASSERT_TRUE(session2.LoadCacheFile(path).ok());
  EXPECT_EQ(session2.cache_size(), session1.cache_size());
  std::ostringstream a, b;
  ASSERT_TRUE(session1.SaveCache(a).ok());
  ASSERT_TRUE(session2.SaveCache(b).ok());
  EXPECT_EQ(a.str(), b.str());
  std::remove(path.c_str());
}

TEST(AtomicCacheFileTest, TornTempFileNeverReplacesValidCache) {
  // Simulated crash: a partially-written temp file sits next to the real
  // cache, as if the process died mid-SaveCacheFile before the rename.
  // The destination itself must still load fully valid, and the torn temp
  // must be rejected rather than silently merged.
  const std::string path = testing::TempDir() + "bolt_cache_torn.log";
  const std::string torn_path = path + ".tmp.crashed";
  Profiler session1(kT4);
  PopulateCache(session1, 11, 6);
  ASSERT_TRUE(session1.SaveCacheFile(path).ok());
  {
    std::ofstream torn(torn_path);  // half a record, no trailing newline
    torn << "# bolt tuning cache v1 arch=sm75\ngemm/64x64x64/lin";
  }

  Profiler session2(kT4);
  ASSERT_TRUE(session2.LoadCacheFile(path).ok());
  EXPECT_EQ(session2.cache_size(), session1.cache_size());
  Profiler session3(kT4);
  EXPECT_FALSE(session3.LoadCacheFile(torn_path).ok());
  std::remove(path.c_str());
  std::remove(torn_path.c_str());
}

TEST(AtomicCacheFileTest, FailedSaveLeavesDestinationUntouched) {
  // Destination is a directory: the final rename must fail, the status
  // must report it, the destination must be untouched, and no temp file
  // may be left behind.
  const std::string path = testing::TempDir() + "bolt_cache_destdir";
  std::filesystem::create_directory(path);
  Profiler session(kT4);
  PopulateCache(session, 3, 2);
  EXPECT_FALSE(session.SaveCacheFile(path).ok());
  EXPECT_TRUE(std::filesystem::is_directory(path));
  int leftovers = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(testing::TempDir())) {
    if (e.path().filename().string().rfind("bolt_cache_destdir.tmp", 0) ==
        0) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0);
  std::filesystem::remove(path);
}

TEST(AtomicCacheFileTest, ConcurrentReadersNeverSeeATornFile) {
  // A reader loading while a writer alternates between two cache
  // generations must always see one complete generation — never a parse
  // error, never a record count that matches neither.
  const std::string path = testing::TempDir() + "bolt_cache_concurrent.log";
  Profiler small(kT4);
  PopulateCache(small, 17, 2);
  Profiler big(kT4);
  PopulateCache(big, 23, 10);
  const int small_n = small.cache_size();
  const int big_n = big.cache_size();
  ASSERT_TRUE(small.SaveCacheFile(path).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!stop.load()) {
      Profiler r(kT4);
      if (!r.LoadCacheFile(path).ok()) {
        torn.fetch_add(1);
        continue;
      }
      const int n = r.cache_size();
      if (n != small_n && n != big_n) torn.fetch_add(1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(((i % 2 == 0) ? big : small).SaveCacheFile(path).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Device-seconds attribution: cache hits are free, failed workloads are
// not double-charged, and a shared profiler charges each compile only for
// the work it added.

TEST(DeviceSecondsTest, CacheHitChargesZeroDeviceSeconds) {
  Profiler prof(kT4);
  const GemmCoord p(1280, 3072, 768);
  ASSERT_TRUE(prof.ProfileGemm(p, EpilogueSpec::Linear()).ok());
  const double device_before = prof.clock().device_seconds();
  const double wall_before = prof.clock().seconds();
  auto hit = prof.ProfileGemm(p, EpilogueSpec::Linear());
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_DOUBLE_EQ(prof.clock().device_seconds(), device_before);
  EXPECT_DOUBLE_EQ(prof.clock().seconds(), wall_before);
}

TEST(DeviceSecondsTest, InfeasibleWorkloadIsNotDoubleCharged) {
  // No candidate fits a device with zero shared memory.  The first attempt
  // pays the one-time pregen; the deferred-error path (BuildModule
  // re-encountering a workload PreProfile already failed) must charge
  // nothing further.
  DeviceSpec tiny = kT4;
  tiny.max_smem_per_cta = 0;
  Profiler prof(tiny);
  const GemmCoord p(64, 64, 64);
  EXPECT_FALSE(prof.ProfileGemm(p, EpilogueSpec::Linear()).ok());
  const double after_first = prof.clock().device_seconds();
  EXPECT_FALSE(prof.ProfileGemm(p, EpilogueSpec::Linear()).ok());
  EXPECT_DOUBLE_EQ(prof.clock().device_seconds(), after_first);
}

TEST(DeviceSecondsTest, SharedProfilerSecondCompileChargesNothing) {
  models::RepVggOptions mopts;
  mopts.batch = 8;
  mopts.image_size = 32;
  mopts.num_classes = 10;
  auto a0 = models::BuildRepVgg(models::RepVggVariant::kA0, mopts);
  ASSERT_TRUE(a0.ok());

  ProfilerCostModel pc;
  pc.num_threads = 4;
  Profiler shared(kT4, pc);
  CompileOptions opts;
  opts.profiler_cost.num_threads = 4;
  opts.shared_profiler = &shared;
  auto first = Engine::Compile(*a0, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->tuning_report().device_seconds, 0.0);

  auto second = Engine::Compile(*a0, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->tuning_report().device_seconds, 0.0);
  EXPECT_DOUBLE_EQ(second->tuning_report().seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Parallel profiling determinism: a parallel profiler must select
// bit-identical configs and latencies to the serial baseline.

ProfilerCostModel ParallelCost(int threads) {
  ProfilerCostModel cost;
  cost.num_threads = threads;
  return cost;
}

TEST(ParallelProfilerTest, GemmMatchesSerialBitExactly) {
  Profiler serial(kT4);
  Profiler parallel(kT4, ParallelCost(8));
  for (const auto& w : workloads::Fig1Gemms()) {
    auto s = serial.ProfileGemm(w.coord, EpilogueSpec::Linear());
    auto p = parallel.ProfileGemm(w.coord, EpilogueSpec::Linear());
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(s.value().config == p.value().config) << w.name;
    EXPECT_EQ(s.value().us, p.value().us) << w.name;  // bit-identical
    EXPECT_EQ(s.value().candidates_tried, p.value().candidates_tried)
        << w.name;
  }
}

TEST(ParallelProfilerTest, ConvMatchesSerialBitExactly) {
  Profiler serial(kT4);
  Profiler parallel(kT4, ParallelCost(8));
  for (const auto& w : workloads::Table3Workloads()) {
    auto s = serial.ProfileConv(w.problem, EpilogueSpec::Linear());
    auto p = parallel.ProfileConv(w.problem, EpilogueSpec::Linear());
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(s.value().config == p.value().config);
    EXPECT_EQ(s.value().us, p.value().us);
  }
}

TEST(ParallelProfilerTest, B2bMatchesSerialBitExactly) {
  Profiler serial(kT4);
  Profiler parallel(kT4, ParallelCost(8));
  EpilogueSpec relu =
      EpilogueSpec::WithActivation(ActivationKind::kRelu, false);
  for (const auto& w : workloads::Table1Workloads()) {
    auto s = serial.ProfileB2bGemm({w.gemm0, w.gemm1}, {relu, relu});
    auto p = parallel.ProfileB2bGemm({w.gemm0, w.gemm1}, {relu, relu});
    ASSERT_EQ(s.feasible, p.feasible);
    EXPECT_EQ(s.fused_us, p.fused_us);
    EXPECT_EQ(s.unfused_us, p.unfused_us);
    EXPECT_EQ(s.residence, p.residence);
    ASSERT_EQ(s.configs.size(), p.configs.size());
    for (size_t i = 0; i < s.configs.size(); ++i) {
      EXPECT_TRUE(s.configs[i] == p.configs[i]);
    }
  }
}

TEST(ParallelProfilerTest, WallClockIsCriticalPathDeviceIsSum) {
  Profiler serial(kT4);
  Profiler parallel(kT4, ParallelCost(8));
  for (const auto& w : workloads::Fig1Gemms()) {
    ASSERT_TRUE(serial.ProfileGemm(w.coord, EpilogueSpec::Linear()).ok());
    ASSERT_TRUE(parallel.ProfileGemm(w.coord, EpilogueSpec::Linear()).ok());
  }
  // Device seconds: the same work was performed, parallel or not.
  EXPECT_NEAR(parallel.clock().device_seconds(),
              serial.clock().device_seconds(),
              1e-9 * serial.clock().device_seconds());
  EXPECT_DOUBLE_EQ(serial.clock().device_seconds(),
                   serial.clock().seconds());
  // Wall seconds: the critical path across 8 workers is far shorter, but
  // can never beat perfect scaling.
  EXPECT_LT(parallel.clock().seconds(), serial.clock().seconds() / 3.0);
  EXPECT_GE(parallel.clock().seconds() * 8.0,
            serial.clock().seconds() * (1.0 - 1e-12));
}

TEST(ParallelProfilerTest, SingleFlightProfilesEachWorkloadOnce) {
  // Hammer one workload from many engine-level jobs: the single-flight
  // cache must measure it exactly once (one pregen charge, one candidate
  // sweep) no matter how many threads race.
  Profiler prof(kT4, ParallelCost(8));
  const GemmCoord p(1280, 3072, 768);
  std::atomic<int> misses{0};
  prof.pool()->ParallelFor(64, [&](int64_t) {
    auto r = prof.ProfileGemm(p, EpilogueSpec::Linear());
    ASSERT_TRUE(r.ok());
    if (!r.value().cache_hit) misses.fetch_add(1);
  });
  EXPECT_EQ(misses.load(), 1);
  EXPECT_EQ(prof.cache_size(), 1);

  Profiler once(kT4, ParallelCost(8));
  auto r = once.ProfileGemm(p, EpilogueSpec::Linear());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(prof.clock().seconds(), once.clock().seconds());
}

// ---------------------------------------------------------------------------
// Engine-level parallel tuning: the acceptance bar from the issue — on the
// RepVGG workload, 8 workers cut reported wall-clock tuning time >= 3x
// while selecting identical kernels.

TEST(ParallelEngineTest, RepVggParallelTuningMatchesSerialAndIsFaster) {
  models::RepVggOptions mopts;
  mopts.batch = 8;
  mopts.image_size = 32;
  mopts.num_classes = 10;
  auto a0 = models::BuildRepVgg(models::RepVggVariant::kA0, mopts);
  ASSERT_TRUE(a0.ok());

  CompileOptions serial_opts;
  auto serial = Engine::Compile(*a0, serial_opts);
  ASSERT_TRUE(serial.ok());

  CompileOptions parallel_opts;
  parallel_opts.profiler_cost.num_threads = 8;
  auto parallel = Engine::Compile(*a0, parallel_opts);
  ASSERT_TRUE(parallel.ok());

  // Identical kernel selection end to end.
  EXPECT_DOUBLE_EQ(parallel->EstimatedLatencyUs(),
                   serial->EstimatedLatencyUs());
  EXPECT_EQ(parallel->module().FullSource(), serial->module().FullSource());
  EXPECT_EQ(parallel->tuning_report().candidates_tried,
            serial->tuning_report().candidates_tried);

  // >= 3x lower wall-clock tuning time; device seconds stay comparable
  // (the same measurements ran, just spread across workers).
  const double serial_s = serial->tuning_report().seconds;
  const double parallel_s = parallel->tuning_report().seconds;
  EXPECT_GE(serial_s, 3.0 * parallel_s)
      << "serial " << serial_s << "s vs parallel " << parallel_s << "s";
  EXPECT_NEAR(parallel->tuning_report().device_seconds,
              serial->tuning_report().device_seconds,
              1e-6 * serial->tuning_report().device_seconds);
}

}  // namespace
}  // namespace bolt
