// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0

#include "testing/diff_harness.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/ulp.h"

namespace bolt {
namespace difftest {

Tensor RandomTensor(TensorDesc desc, uint64_t seed) {
  Tensor t(std::move(desc));
  Rng rng(seed);
  rng.FillNormal(t.data(), 0.5f);
  t.Quantize();
  return t;
}

cpukernels::BlockConfig RandomBlock(Rng& rng, bool isa_axis) {
  const int mcs[] = {-4, 0, 1, 3, 4, 5, 8, 12, 32, 64, 200};
  const int kcs[] = {-2, 0, 1, 7, 8, 9, 33, 256};
  const int ncs[] = {-8, 0, 1, 7, 8, 9, 24, 100, 4096};
  cpukernels::BlockConfig c;
  c.mc = mcs[rng.Uniform(0, 10)];
  c.kc = kcs[rng.Uniform(0, 7)];
  c.nc = ncs[rng.Uniform(0, 8)];
  c.scheme = rng.Uniform(0, 1) == 0 ? cpukernels::ParallelScheme::kLoopLevel
                                    : cpukernels::ParallelScheme::kBatchLevel;
  if (isa_axis) {
    const cpukernels::CpuIsa isas[] = {cpukernels::CpuIsa::kAuto,
                                       cpukernels::CpuIsa::kScalar,
                                       cpukernels::CpuIsa::kAvx2,
                                       cpukernels::CpuIsa::kAvx512};
    c.isa = isas[rng.Uniform(0, 3)];
  }
  c.prefetch = rng.Uniform(0, 1) == 1;
  return c;
}

Layout RandomConvLayout(Rng& rng, int64_t c, int64_t oc) {
  switch (rng.Uniform(0, 2)) {
    case 0:
      return Layout::kNCHW;
    case 1:
      return Layout::kNHWC;
    default:
      return c % kNCHWcBlock == 0 && oc % kNCHWcBlock == 0 ? Layout::kNCHWc
                                                           : Layout::kNCHW;
  }
}

const std::vector<ActivationKind> kActivations = {
    ActivationKind::kIdentity,  ActivationKind::kRelu,
    ActivationKind::kGelu,      ActivationKind::kSigmoid,
    ActivationKind::kHardswish, ActivationKind::kSoftplus,
};

Tolerance ToleranceFor(cpukernels::CpuIsa resolved, DType dtype) {
  // Both SIMD tiers share one ULP budget: their packing and epilogue
  // paths are bit-identical data movement (pack_simd.cc is compiled
  // without FMA contraction), so the only rounding divergence from the
  // scalar tier is the micro-kernel FMA — identical in kind for AVX2 and
  // AVX-512, just a different vector width.
  Tolerance tol;
  if (resolved == cpukernels::CpuIsa::kAvx2 ||
      resolved == cpukernels::CpuIsa::kAvx512) {
    tol.max_ulps = dtype == DType::kFloat16 ? kSimdMaxUlpsFloat16
                                            : kSimdMaxUlpsFloat32;
    tol.abs_escape = kSimdUlpAbsEscape;
  }
  return tol;
}

namespace {

std::mutex g_stats_mu;
std::map<std::string, OpStats>& StatsMap() {
  static auto* m = new std::map<std::string, OpStats>();
  return *m;
}

void Record(const std::string& op, int64_t ulps, bool failed,
            const Tolerance& tol) {
  {
    std::lock_guard<std::mutex> lock(g_stats_mu);
    OpStats& s = StatsMap()[op];
    ++s.checks;
    if (failed) ++s.failures;
    if (ulps > s.max_ulps) s.max_ulps = ulps;
    if (tol.max_ulps > s.bound_ulps) s.bound_ulps = tol.max_ulps;
  }
  auto& reg = metrics::Registry::Global();
  reg.GetCounter(StrCat("cpu.diff.", op, ".checks")).Increment();
  if (failed) reg.GetCounter(StrCat("cpu.diff.", op, ".failures")).Increment();
  reg.GetHistogram(StrCat("cpu.diff.", op, ".ulp"))
      .Observe(static_cast<double>(ulps));
}

/// Registered at static-init time (AddGlobalTestEnvironment is legal
/// before InitGoogleTest); TearDown runs once after every test in the
/// binary, when the accounting is complete.
class DiffSummaryEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* path = std::getenv("BOLT_DIFF_SUMMARY");
    if (path == nullptr || *path == '\0') return;
    const Status s = WriteDiffSummary(path);
    if (!s.ok()) {
      ADD_FAILURE() << "BOLT_DIFF_SUMMARY write failed: " << s.message();
    }
  }
};

const int kSummaryEnvRegistered =
    (::testing::AddGlobalTestEnvironment(new DiffSummaryEnvironment()), 0);

}  // namespace

OpStats StatsFor(const std::string& op) {
  std::lock_guard<std::mutex> lock(g_stats_mu);
  return StatsMap()[op];
}

::testing::AssertionResult CheckDiff(const std::string& op,
                                     const Tensor& got, const Tensor& want,
                                     const Tolerance& tol) {
  (void)kSummaryEnvRegistered;
  // Always measure the ULP distance (with the tier's escape) so the
  // accounting reflects real drift even for exact-tier checks, where any
  // nonzero distance is already a failure.
  const int64_t ulps = got.MaxUlpDiff(want, tol.abs_escape);
  bool failed;
  std::string why;
  if (tol.exact()) {
    const float abs = got.MaxAbsDiff(want);
    failed = abs != 0.0f;
    if (failed) {
      why = StrCat("bit-exact tier violated for ", op, ": MaxAbsDiff=", abs,
                   " (", ulps, " ULPs)");
    }
  } else {
    failed = ulps > tol.max_ulps;
    if (failed) {
      why = StrCat("ULP bound violated for ", op, ": ", ulps, " > ",
                   tol.max_ulps, " (abs_escape=", tol.abs_escape, ")");
    }
  }
  Record(op, tol.exact() && !failed ? 0 : ulps, failed, tol);
  if (failed) return ::testing::AssertionFailure() << why;
  return ::testing::AssertionSuccess();
}

Status WriteDiffSummary(const std::string& path) {
  std::map<std::string, OpStats> snapshot;
  {
    std::lock_guard<std::mutex> lock(g_stats_mu);
    snapshot = StatsMap();
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument(StrCat("cannot open ", path));
  }
  out << "{\n  \"isa\": \""
      << cpukernels::CpuIsaName(cpukernels::DefaultCpuIsa())
      << "\",\n  \"ops\": {";
  bool first = true;
  for (const auto& [op, s] : snapshot) {
    out << (first ? "" : ",") << "\n    \"" << op << "\": {"
        << "\"checks\": " << s.checks << ", \"failures\": " << s.failures
        << ", \"max_ulps\": " << s.max_ulps
        << ", \"bound_ulps\": " << s.bound_ulps << "}";
    first = false;
  }
  out << "\n  }\n}\n";
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

}  // namespace difftest
}  // namespace bolt
