// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0
//
// Shared differential-testing harness for the CPU kernel stack.
//
// The CPU backend promises a *two-tier* numeric contract
// (docs/CPU_BACKEND.md): the scalar micro-kernel tier is bit-identical to
// the reference interpreter, while the runtime-dispatched SIMD tier
// (AVX2+FMA) is ULP-bounded against it (common/ulp.h).  Every test that
// exercises that contract — test_cpukernels, test_cpu_autotune,
// test_simd_kernels — draws its randomized (shape, layout, epilogue,
// BlockConfig) tuples from the seeded generators here and funnels its
// comparisons through CheckDiff(), which
//
//   * picks the tier from the *resolved* ISA of the block under test
//     (ToleranceFor), so the same tuple stream asserts bit-exactness in a
//     scalar process and the documented ULP bound in an AVX2 one;
//   * accounts every comparison per op into the process-wide metrics
//     registry (`cpu.diff.<op>.checks` / `.failures` counters and a
//     `cpu.diff.<op>.ulp` histogram) and an in-harness max-ULP tracker;
//   * returns a gtest AssertionResult carrying the offending distance, so
//     callers write EXPECT_TRUE(CheckDiff(...)) inside a SCOPED_TRACE that
//     logs the seed and tuple.
//
// When $BOLT_DIFF_SUMMARY names a file, a gtest environment registered by
// the harness writes a JSON summary of the per-op ULP accounting there at
// process teardown — CI uploads it as the diff-harness artifact.

#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "cpukernels/config.h"
#include "cpukernels/cpuinfo.h"
#include "ir/graph.h"
#include "ir/tensor.h"

namespace bolt {
namespace difftest {

/// Seeded random tensor: normal(0, 0.5) values quantized to the storage
/// dtype.  The same (desc, seed) pair reproduces bit-identically across
/// processes — failures log the seed, reruns replay it.
Tensor RandomTensor(TensorDesc desc, uint64_t seed);

/// Draws a BlockConfig from a space that deliberately includes invalid
/// values (mc < kMR, nc not a multiple of kNR, non-positive dims) so the
/// kernels' clamping is part of the tested surface.  The prefetch axis is
/// always drawn (it may never change numerics).  With `isa_axis` the draw
/// also covers the ISA knob {kAuto, kScalar, kAvx2, kAvx512}; a SIMD
/// request degrades down the ladder on hosts without the tier, which is
/// exactly the production resolution path and therefore fair game.
cpukernels::BlockConfig RandomBlock(Rng& rng, bool isa_axis = false);

/// Draws an activation layout for randomized conv tuples — an always-drawn
/// axis like prefetch: every tuple pins one of NCHW / NHWC / blocked
/// NCHWc with equal probability.  NCHWc requires C and OC divisible by
/// kNCHWcBlock; an unaligned draw degrades to NCHW, which is exactly the
/// production eligibility rule and therefore fair game.
Layout RandomConvLayout(Rng& rng, int64_t c, int64_t oc);

/// The epilogue activations the randomized tuples cycle through.
extern const std::vector<ActivationKind> kActivations;

/// One tier of the numeric contract: max_ulps == 0 means the bit-exact
/// tier (enforced as MaxAbsDiff == 0, no escape hatch).
struct Tolerance {
  int64_t max_ulps = 0;
  float abs_escape = 0.0f;
  bool exact() const { return max_ulps == 0; }
};

/// Tier selection: a *resolved* ISA (never kAuto — pass the result of
/// ResolveCpuIsa) plus the output storage dtype.  Scalar resolves to the
/// exact tier; AVX2 and AVX-512 share the documented SIMD bound on the
/// dtype's own grid (their pack/epilogue paths are bit-identical data
/// movement; only the micro-kernel FMA width differs).
Tolerance ToleranceFor(cpukernels::CpuIsa resolved, DType dtype);

/// Per-op accounting snapshot (also mirrored into the metrics registry).
struct OpStats {
  int64_t checks = 0;
  int64_t failures = 0;
  int64_t max_ulps = 0;      // worst distance seen, after the escape
  int64_t bound_ulps = 0;    // loosest non-exact bound this op was held to
};

/// Snapshot of the accounting for `op` ("gemm", "conv", ...).
OpStats StatsFor(const std::string& op);

/// Compares `got` against the reference `want` under `tol`, records the
/// observed ULP distance for `op`, and returns a rich AssertionResult.
/// Exact tier: requires MaxAbsDiff == 0 (bit identity).  Tolerance tier:
/// requires MaxUlpDiff(want, tol.abs_escape) <= tol.max_ulps on got's
/// storage grid.
::testing::AssertionResult CheckDiff(const std::string& op,
                                     const Tensor& got, const Tensor& want,
                                     const Tolerance& tol);

/// Writes the per-op accounting as JSON to `path`.  Called automatically
/// at gtest teardown when $BOLT_DIFF_SUMMARY is set; callable directly.
Status WriteDiffSummary(const std::string& path);

}  // namespace difftest
}  // namespace bolt
