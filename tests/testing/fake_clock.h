// Copyright (c) 2026 The Bolt Reproduction Authors.
// SPDX-License-Identifier: Apache-2.0
//
// A manually-advanced serve::Clock for deterministic scheduler tests.
//
// Two usage modes:
//
//   * Manual: test code calls Advance()/AdvanceTo() from another thread
//     while a consumer blocks inside a clock wait.  Advance wakes every
//     registered waiter, so the consumer re-evaluates its deadline at
//     the new fake time — no sleeps, no races: Advance acquires each
//     waiter's mutex before notifying, so a waiter is either not yet
//     blocked (and re-reads the advanced clock before waiting) or is
//     parked in the wait (and receives the notification).
//
//   * Auto-advance: WaitUntil jumps the clock straight to its deadline
//     when the predicate is not yet satisfied, so a single-threaded test
//     can call e.g. FairScheduler::NextBatch and observe the partial
//     batch flush "at" the straggler deadline, with NowUs() reporting
//     exactly when the dispatch decision fired.

#pragma once

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "serve/clock.h"

namespace bolt {
namespace testing {

class FakeClock : public serve::Clock {
 public:
  explicit FakeClock(double start_us = 0.0, bool auto_advance = false)
      : now_us_(start_us), auto_advance_(auto_advance) {}

  double NowUs() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_us_;
  }

  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, double deadline_us,
                 const std::function<bool()>& pred) override {
    for (;;) {
      if (pred()) return true;
      if (NowUs() >= deadline_us) return false;
      if (auto_advance_ && std::isfinite(deadline_us)) {
        // Jump to the deadline; the caller's mutex is held, so skip
        // locking it when notifying other waiters parked on it.
        AdvanceToInternal(deadline_us, lock.mutex());
        continue;
      }
      Register(&cv, lock.mutex());
      cv.wait(lock);
      Deregister(&cv, lock.mutex());
    }
  }

  void Advance(double delta_us) { AdvanceTo(NowUs() + delta_us); }

  void AdvanceTo(double target_us) {
    AdvanceToInternal(target_us, /*held=*/nullptr);
  }

  void set_auto_advance(bool on) {
    std::lock_guard<std::mutex> lock(mu_);
    auto_advance_ = on;
  }

 private:
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mu;
  };

  void Register(std::condition_variable* cv, std::mutex* mu) {
    std::lock_guard<std::mutex> lock(mu_);
    waiters_.push_back({cv, mu});
  }

  void Deregister(std::condition_variable* cv, std::mutex* mu) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find_if(waiters_.begin(), waiters_.end(),
                           [&](const Waiter& w) {
                             return w.cv == cv && w.mu == mu;
                           });
    if (it != waiters_.end()) waiters_.erase(it);
  }

  void AdvanceToInternal(double target_us, std::mutex* held) {
    std::vector<Waiter> snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      now_us_ = std::max(now_us_, target_us);
      snapshot = waiters_;
    }
    for (const Waiter& w : snapshot) {
      if (w.mu == held) {
        w.cv->notify_all();
      } else {
        std::lock_guard<std::mutex> g(*w.mu);
        w.cv->notify_all();
      }
    }
  }

  mutable std::mutex mu_;
  double now_us_;
  bool auto_advance_;
  std::vector<Waiter> waiters_;
};

}  // namespace testing
}  // namespace bolt
